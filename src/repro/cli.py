"""Command-line interface: ``python -m repro.cli``.

Subcommands::

    slice FILE --line N [--line M ...] [--batch-file F] [--traditional]
               [--no-stdlib] [--context N] [--deadline S]
    run FILE [ARG ...]
    explain FILE --line N            # control explainers for a line
    why FILE --source N --sink M     # producer path between two lines
    chop FILE --source N --sink M    # thin chop between two lines
    dot FILE [--line N] [-o OUT]     # Graphviz export (slice or full)
    stats FILE                       # analysis statistics
    serve [--tcp HOST:PORT]          # long-lived analysis daemon
    serve --tcp H:P --shards N       # router + N local shard daemons
    route --shard H:P [--shard ...]  # router over external shards
    health --server HOST:PORT        # daemon (or router) load/topology
    fuzz [--budget 60s] [--seed N]   # fuzz the analyzer's no-crash contract

``FILE`` may also be the name of a shipped suite program (e.g.
``figure1``).

``slice`` and ``stats`` accept ``--format json`` for machine-readable
output (the same payloads the server protocol emits).  The query
subcommands accept ``--server HOST:PORT`` to route the request through
a running ``repro serve --tcp`` daemon instead of analyzing in-process
— warm queries skip the whole pipeline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Any

from repro import analyze
from repro.suite.loader import load_source, program_names

DEFAULT_CACHE_DIR = Path.home() / ".cache" / "repro-server"


def _read_program(spec: str) -> tuple[str, str]:
    path = Path(spec)
    if path.exists():
        try:
            return path.read_text(), path.name
        except OSError as exc:
            reason = exc.strerror or str(exc)
            raise SystemExit(
                f"error: cannot read {spec!r}: {reason}"
            ) from None
    if spec in program_names():
        return load_source(spec), f"{spec}.mj"
    raise SystemExit(
        f"error: {spec!r} is neither a file nor a suite program "
        f"(known: {', '.join(program_names())})"
    )


# ----------------------------------------------------------------------
# Server routing
# ----------------------------------------------------------------------


def _parse_hostport(spec: str) -> tuple[str, int]:
    host, _, port_text = spec.rpartition(":")
    if not host:
        host = "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise SystemExit(
            f"error: bad address {spec!r} (expected HOST:PORT)"
        ) from None
    return host, port


def _server_request(address: str, method: str, **params: Any) -> dict[str, Any]:
    from repro.server.client import ServerError, SliceClient

    host, port = _parse_hostport(address)
    try:
        with SliceClient.connect(host, port) as client:
            return client.request(method, **params)
    except ServerError as exc:
        raise SystemExit(f"error: server: {exc}") from None
    except OSError as exc:
        raise SystemExit(
            f"error: cannot reach server at {address}: {exc}"
        ) from None


def _print_json(payload: dict[str, Any]) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


def _print_timings(timings: dict[str, Any] | None) -> None:
    """Print a pipeline stage table to stderr (``--timings``)."""
    from repro.profiling import render_timings

    if not timings:
        print("timings: not available for this request", file=sys.stderr)
        return
    print("pipeline timings:", file=sys.stderr)
    print(render_timings(timings), file=sys.stderr)


# ----------------------------------------------------------------------
# Query subcommands
# ----------------------------------------------------------------------


def _read_batch_lines(path: str) -> list[int]:
    """Seed lines from a batch file: one integer per line, ``#`` comments."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        reason = exc.strerror or str(exc)
        raise SystemExit(f"error: cannot read {path!r}: {reason}") from None
    seeds: list[int] = []
    for number, raw in enumerate(text.splitlines(), 1):
        stripped = raw.split("#", 1)[0].strip()
        if not stripped:
            continue
        try:
            seeds.append(int(stripped))
        except ValueError:
            raise SystemExit(
                f"error: {path}:{number}: not an integer seed line: {raw!r}"
            ) from None
    return seeds


def _render_slice_text(payload: dict[str, Any], name: str, line: int) -> int:
    """Print one seed's slice block (the single text formatter every
    path — local, server, batch — routes through).  Returns exit code."""
    if not payload["seed_count"]:
        print(f"no statements found at {name}:{line}", file=sys.stderr)
        return 1
    print(f"{payload['flavor']} slice from {name}:{line} "
          f"({payload['line_count']} lines):\n")
    print(payload["source_view"])
    return 0


def _cmd_slice(args: argparse.Namespace) -> int:
    from repro.server.protocol import slice_batch_payload, slice_payload

    source, name = _read_program(args.file)
    flavor = "traditional" if args.traditional else "thin"
    if args.deadline is not None and args.deadline <= 0:
        raise SystemExit("error: --deadline must be positive")
    seeds = list(args.line or [])
    if args.batch_file:
        seeds.extend(_read_batch_lines(args.batch_file))
    if not seeds:
        raise SystemExit(
            "error: need at least one seed (--line N, repeatable, "
            "or --batch-file FILE)"
        )
    analyzed = None
    distinct_programs = 1
    if args.server:
        common = dict(
            source=source,
            filename=name,
            flavor=flavor,
            context=args.context,
            include_stdlib=not args.no_stdlib,
            deadline=args.deadline,
        )
        if len(seeds) == 1:
            payloads = [
                _server_request(args.server, "slice", line=seeds[0], **common)
            ]
        else:
            batch = _server_request(
                args.server, "slice_batch", lines=seeds, **common
            )
            payloads = batch["results"]
            distinct_programs = batch["distinct_programs"]
    else:
        from repro import AnalyzeOptions, Budget, BudgetExceeded

        options = AnalyzeOptions(
            include_stdlib=not args.no_stdlib,
            budget=(
                Budget.from_timeout(args.deadline)
                if args.deadline is not None
                else None
            ),
        )
        try:
            analyzed = analyze(source, name, options=options)
        except BudgetExceeded as exc:
            raise SystemExit(
                f"error: analysis exceeded the {args.deadline:g}s deadline "
                f"({exc})"
            ) from None
        payloads = []
        for line in seeds:
            slicer = (
                analyzed.traditional_slicer
                if args.traditional
                else analyzed.thin_slicer
            )
            result = slicer.slice_from_line(line)
            payloads.append(
                slice_payload(
                    result,
                    program=name,
                    line=line,
                    flavor=flavor,
                    context=args.context,
                )
            )
    if args.timings:
        # Server-side analyses report timings via ``stats``, not per slice.
        _print_timings(None if args.server else analyzed.timings)
    if args.format == "json":
        if len(payloads) == 1:
            _print_json(payloads[0])
        else:
            _print_json(
                slice_batch_payload(
                    payloads, distinct_programs=distinct_programs
                )
            )
        return 0 if all(p["seed_count"] for p in payloads) else 1
    status = 0
    for payload, line in zip(payloads, seeds):
        status |= _render_slice_text(payload, name, line)
    return status


def _cmd_run(args: argparse.Namespace) -> int:
    source, name = _read_program(args.file)
    analyzed = analyze(source, name)
    result = analyzed.run(args.args)
    for line in result.output:
        print(line)
    if result.error is not None:
        print(f"uncaught exception: {result.error}", file=sys.stderr)
        return 1
    if result.timed_out:
        print("execution timed out", file=sys.stderr)
        return 2
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.server.protocol import explain_payload

    source, name = _read_program(args.file)
    if args.server:
        payload = _server_request(
            args.server,
            "explain",
            source=source,
            filename=name,
            line=args.line,
            include_stdlib=not args.no_stdlib,
        )
    else:
        analyzed = analyze(source, name, include_stdlib=not args.no_stdlib)
        if not any(
            analyzed.sdg.nodes_of_instruction(i)
            for i in analyzed.compiled.instructions_at_line(args.line)
        ):
            print(f"no statements found at {name}:{args.line}", file=sys.stderr)
            return 1
        payload = explain_payload(analyzed, program=name, line=args.line)
    for conditional in payload["conditionals"]:
        print(f"{conditional['line']:5d}  {conditional['text']}")
    if not payload["conditionals"]:
        print("(no governing conditionals)")
    return 0


def _cmd_why(args: argparse.Namespace) -> int:
    from repro.server.protocol import why_payload

    source, name = _read_program(args.file)
    if args.server:
        payload = _server_request(
            args.server,
            "why",
            source=source,
            filename=name,
            source_line=args.source,
            sink_line=args.sink,
            include_stdlib=not args.no_stdlib,
        )
    else:
        analyzed = analyze(source, name, include_stdlib=not args.no_stdlib)
        payload = why_payload(
            analyzed,
            program=name,
            source_line=args.source,
            sink_line=args.sink,
        )
    if not payload["found"]:
        print(
            f"no producer-flow path from {name}:{args.source} to "
            f"{name}:{args.sink}",
            file=sys.stderr,
        )
        return 1
    print(
        f"value flow from {name}:{args.source} to {name}:{args.sink}:\n"
    )
    print(payload["rendered"])
    return 0


def _cmd_chop(args: argparse.Namespace) -> int:
    from repro.server.protocol import chop_payload

    source, name = _read_program(args.file)
    flavor = "traditional" if args.traditional else "thin"
    if args.server:
        payload = _server_request(
            args.server,
            "chop",
            source=source,
            filename=name,
            source_line=args.source,
            sink_line=args.sink,
            flavor=flavor,
            include_stdlib=not args.no_stdlib,
        )
    else:
        from repro.slicing.chopping import thin_chop, traditional_chop

        analyzed = analyze(source, name, include_stdlib=not args.no_stdlib)
        chopper = traditional_chop if args.traditional else thin_chop
        result = chopper(
            analyzed.compiled, analyzed.sdg, args.source, args.sink
        )
        payload = chop_payload(
            result,
            analyzed,
            program=name,
            source_line=args.source,
            sink_line=args.sink,
            flavor=flavor,
        )
    if payload["empty"]:
        print(
            f"empty chop: {name}:{args.source} does not reach "
            f"{name}:{args.sink}",
            file=sys.stderr,
        )
        return 1
    print(f"{payload['flavor']} chop ({payload['line_count']} lines):")
    for row in payload["lines"]:
        print(f"  {row['line']:5d}  {row['text']}")
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    from repro.sdg.export import sdg_to_dot, slice_to_dot

    source, name = _read_program(args.file)
    analyzed = analyze(source, name, include_stdlib=not args.no_stdlib)
    if args.line is not None:
        result = analyzed.thin_slicer.slice_from_line(args.line)
        if not result.seeds:
            print(f"no statements found at {name}:{args.line}", file=sys.stderr)
            return 1
        dot = slice_to_dot(result, analyzed.sdg, title=f"{name}:{args.line}")
    else:
        dot = sdg_to_dot(analyzed.sdg, title=name)
    if args.output:
        Path(args.output).write_text(dot + "\n")
        print(f"wrote {args.output}")
    else:
        print(dot)
    return 0


_STATS_LABELS = [
    ("program", "program:           "),
    ("classes", "classes:           "),
    ("functions_ir", "functions (IR):    "),
    ("reachable_functions", "reachable functions:"),
    ("call_graph_nodes", "call graph nodes:  "),
    ("call_graph_edges", "call graph edges:  "),
    ("sdg_statements", "SDG statements:    "),
    ("sdg_edges", "SDG edges:         "),
]


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.server.protocol import stats_payload

    source, name = _read_program(args.file)
    if args.server:
        payload = _server_request(
            args.server,
            "stats",
            source=source,
            filename=name,
            include_stdlib=not args.no_stdlib,
        )
    else:
        analyzed = analyze(source, name, include_stdlib=not args.no_stdlib)
        payload = stats_payload(analyzed, name)
    if args.timings:
        _print_timings(payload.get("timings"))
    if args.format == "json":
        _print_json(payload)
        return 0
    for key, label in _STATS_LABELS:
        value = payload[key]
        if isinstance(value, int):
            print(f"{label}{value:6d}")
        else:
            print(f"{label} {value}")
    return 0


# ----------------------------------------------------------------------
# The daemon
# ----------------------------------------------------------------------


def _parse_duration(text: str) -> float:
    """``"60"``, ``"60s"``, or ``"5m"`` → seconds."""
    raw = text.strip().lower()
    scale = 1.0
    if raw.endswith("m"):
        raw, scale = raw[:-1], 60.0
    elif raw.endswith("s"):
        raw = raw[:-1]
    try:
        value = float(raw) * scale
    except ValueError:
        raise SystemExit(
            f"error: bad duration {text!r} (use e.g. 60, 60s, or 5m)"
        ) from None
    if value <= 0:
        raise SystemExit("error: duration must be positive")
    return value


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import run_campaign
    from repro.fuzz.runner import CrashRecord, default_corpus

    corpus = default_corpus()
    corpus_dir = Path(args.corpus) if args.corpus else None
    if corpus_dir is not None:
        if not corpus_dir.is_dir():
            raise SystemExit(f"error: {args.corpus!r} is not a directory")
        extra = sorted(corpus_dir.glob("*.mj"))
        corpus.extend(p.read_text(encoding="utf-8") for p in extra)

    def progress(record: CrashRecord) -> None:
        print(
            f"NEW FAILURE [{record.verdict}] {record.error_type}: "
            f"{record.message[:100]} (seed {record.seed})"
            + (f" -> {record.path}" if record.path else ""),
            file=sys.stderr,
        )

    report = run_campaign(
        budget_s=_parse_duration(args.budget),
        seed=args.seed,
        corpus=corpus,
        crash_dir=args.crash_dir,
        input_budget_s=args.input_budget,
        max_inputs=args.max_inputs,
        progress=progress,
    )
    if args.format == "json":
        _print_json(report.as_dict())
    else:
        print(
            f"fuzzed {report.executed} inputs in {report.elapsed_s:.1f}s "
            f"(seed {report.seed}): {report.generated} generated, "
            f"{report.mutated} mutated; {report.ok} analyzed ok, "
            f"{report.structured_errors} structured errors, "
            f"{len(report.crashes)} contract violations"
        )
        for crash in report.crashes:
            where = f" ({crash.path})" if crash.path else ""
            print(
                f"  [{crash.verdict}] {crash.error_type}: "
                f"{crash.message[:100]}{where}"
            )
    return 1 if report.failed else 0


def _cmd_health(args: argparse.Namespace) -> int:
    payload = _server_request(args.server, "health")
    if args.format == "json":
        _print_json(payload)
    elif payload.get("role") == "router":
        if payload["healthy"]:
            state = "healthy"
        elif payload.get("shutting_down"):
            state = "draining"
        else:
            state = "degraded"
        counters = payload["router"]
        print(
            f"{state}: {payload['healthy_shards']}/{payload['shard_count']} "
            f"shards healthy, {counters['forwarded_total']} forwarded, "
            f"{counters['failover_total']} failovers, "
            f"{counters['shed_total']} shed, up {payload['uptime_s']:.0f}s"
        )
        for address, shard in payload["shards"].items():
            share = payload["ring"]["ownership"].get(address)
            line = (
                f"  {address}: {shard['state']}, "
                f"{shard['forwarded_total']} forwarded"
            )
            if share is not None:
                line += f", owns {share:.0%}"
            if shard.get("last_error"):
                line += f" ({shard['last_error'][:80]})"
            print(line)
    else:
        state = "healthy" if payload["healthy"] else "shutting down"
        extra = ""
        quarantine = payload.get("quarantine")
        breaker = payload.get("breaker")
        if quarantine is not None and breaker is not None:
            extra = (
                f", {quarantine['quarantined']} quarantined, "
                f"breaker {breaker['state']}"
            )
        print(
            f"{state}: {payload['busy']}/{payload['workers']} workers busy, "
            f"{payload['queued']} queued (max {payload['max_queue']}), "
            f"{payload['shed_total']} shed, "
            f"{payload['cancelled_total']} cancelled"
            f"{extra}, up {payload['uptime_s']:.0f}s"
        )
    return 0 if payload["healthy"] else 1


def _setup_server_logging(quiet: bool) -> None:
    import logging

    if quiet:
        return
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(message)s"))
    for name in ("repro.server", "repro.router"):
        server_logger = logging.getLogger(name)
        server_logger.addHandler(handler)
        server_logger.setLevel(logging.INFO)


def _shard_serve_args(args: argparse.Namespace) -> list[str]:
    """The ``serve`` flags forwarded to each spawned local shard.

    Each shard gets a *private* store root (``shard-<i>`` under the
    cache dir, appended per shard after these base flags — argparse
    keeps the last ``--cache-dir``) and the ring replicator copies
    artifacts between shards, so a failover re-route lands on a shard
    that already holds a warm replica.
    """
    forwarded = [
        "--memory-capacity",
        str(args.memory_capacity),
        "--timeout",
        str(args.timeout),
        "--workers",
        str(args.workers),
        "--max-queue",
        str(args.max_queue),
    ]
    if args.cache_dir:
        forwarded += ["--cache-dir", args.cache_dir]
    if args.no_disk_cache:
        forwarded += ["--no-disk-cache"]
    if args.executor:
        forwarded += ["--executor", args.executor]
    if args.store_max_mb is not None:
        forwarded += ["--store-max-mb", str(args.store_max_mb)]
    if args.memory_limit_mb is not None:
        forwarded += ["--memory-limit-mb", str(args.memory_limit_mb)]
    if args.poison_threshold is not None:
        forwarded += ["--poison-threshold", str(args.poison_threshold)]
    if args.scrub_interval is not None:
        forwarded += ["--scrub-interval", str(args.scrub_interval)]
    if args.no_incremental:
        forwarded += ["--no-incremental"]
    forwarded += ["--fragment-sessions", str(args.fragment_sessions)]
    return forwarded


def _run_router(
    pool: Any,
    host: str,
    port: int,
    *,
    replicas: int,
    max_inflight: int,
    max_queue: int,
    hedge_delay: float | None = None,
) -> int:
    """Serve a router over ``pool`` in the foreground until shutdown.

    ``hedge_delay``: None = adaptive (p95 of observed forwards), 0 =
    hedging off, positive = fixed hedge delay in seconds.
    """
    from repro.server.router import Router

    router = Router(
        pool,
        replicas=replicas,
        max_inflight=max_inflight,
        max_queue=max_queue,
        hedge=hedge_delay is None or hedge_delay > 0,
        hedge_delay_s=hedge_delay if hedge_delay else None,
    )
    pool.probe_all()
    pool.start_probing()
    router.start(host, port)
    try:
        router.join()
    except KeyboardInterrupt:
        pass
    finally:
        router.stop()
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    from repro.server.shardpool import ShardPool

    if args.rolling_restart:
        # Admin mode: ask a *running* router (serve --shards) to drain
        # and respawn each of its shards in sequence, then report.
        from repro.server.client import ServerError, SliceClient

        host, port = _parse_hostport(args.rolling_restart)
        if args.drain_timeout <= 0:
            raise SystemExit("error: --drain-timeout must be positive")
        client = SliceClient.connect(
            host,
            port,
            # One shard can take up to drain-timeout to drain plus its
            # respawn and health-verify time; budget the whole roll.
            timeout=(args.drain_timeout + 60.0) * 16,
            retries=0,
        )
        try:
            result = client.request(
                "rolling_restart",
                retries=0,
                drain_timeout_s=args.drain_timeout,
            )
        except ServerError as exc:
            raise SystemExit(f"error: rolling restart failed: {exc}") from None
        finally:
            client.close()
        print(json.dumps(result, indent=2, sort_keys=True))
        return 1 if result.get("failed") else 0

    if not args.shard:
        raise SystemExit(
            "error: --shard HOST:PORT is required (or use "
            "--rolling-restart HOST:PORT against a running router)"
        )
    _setup_server_logging(args.quiet)
    if args.probe_interval <= 0:
        raise SystemExit("error: --probe-interval must be positive")
    if args.failure_threshold < 1:
        raise SystemExit("error: --failure-threshold must be >= 1")
    pool = ShardPool(
        failure_threshold=args.failure_threshold,
        probe_interval_s=args.probe_interval,
        request_timeout=args.request_timeout,
    )
    for spec in args.shard:
        shard_host, shard_port = _parse_hostport(spec)
        pool.attach(shard_host, shard_port)
    host, port = _parse_hostport(args.tcp)
    return _run_router(
        pool,
        host,
        port,
        replicas=args.replicas,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        hedge_delay=args.hedge_delay,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.server.cache import AnalysisCache
    from repro.server.daemon import (
        SliceServer,
        default_executor,
        serve_stdio,
        serve_tcp,
    )
    from repro.server.quarantine import Quarantine
    from repro.server.store import DiskStore

    if args.shards:
        from repro.server.shardpool import ShardPool, ShardSpawnError

        if args.shards < 1:
            raise SystemExit("error: --shards must be >= 1")
        if not args.tcp:
            raise SystemExit(
                "error: --shards needs --tcp HOST:PORT for the router "
                "frontend (shards listen on ephemeral local ports)"
            )
        if args.replicate < 1:
            raise SystemExit("error: --replicate must be >= 1")
        if args.repair_interval is not None and args.repair_interval < 0:
            raise SystemExit("error: --repair-interval must be >= 0")
        _setup_server_logging(args.quiet)
        host, port = _parse_hostport(args.tcp)
        per_shard_args = None
        repair_every = 0
        if not args.no_disk_cache:
            # Per-shard private store roots — the replication tier
            # assumes each shard owns its store; copies move over RPC,
            # not through a shared filesystem.
            base = Path(
                args.cache_dir
                or os.environ.get("REPRO_CACHE_DIR")
                or str(DEFAULT_CACHE_DIR)
            )
            per_shard_args = [
                ["--cache-dir", str(base / f"shard-{index}")]
                for index in range(args.shards)
            ]
            interval = (
                args.repair_interval
                if args.repair_interval is not None
                else 30.0
            )
            if interval:
                repair_every = max(
                    1, round(interval / args.probe_interval)
                )
        pool = ShardPool(
            probe_interval_s=args.probe_interval,
            echo_shard_logs=not args.quiet,
            respawn=not args.no_respawn,
            repair_every=repair_every,
        )
        try:
            pool.spawn_local(
                args.shards,
                _shard_serve_args(args),
                per_shard_args=per_shard_args,
            )
        except ShardSpawnError as exc:
            pool.stop()
            raise SystemExit(f"error: {exc}") from None
        if (
            per_shard_args is not None
            and args.shards > 1
            and args.replicate > 1
        ):
            pool.configure_replication(
                args.replicate, ring_replicas=args.replicas
            )
        return _run_router(
            pool,
            host,
            port,
            replicas=args.replicas,
            max_inflight=args.workers * args.shards,
            max_queue=args.max_queue * args.shards,
            hedge_delay=args.hedge_delay,
        )

    _setup_server_logging(args.quiet)

    store = None
    if not args.no_disk_cache:
        cache_dir = (
            args.cache_dir
            or os.environ.get("REPRO_CACHE_DIR")
            or str(DEFAULT_CACHE_DIR)
        )
        max_bytes = None
        if args.store_max_mb is not None:
            if args.store_max_mb <= 0:
                raise SystemExit("error: --store-max-mb must be positive")
            max_bytes = int(args.store_max_mb * 1024 * 1024)
        store = DiskStore(Path(cache_dir), max_bytes=max_bytes)
    cache = AnalysisCache(capacity=args.memory_capacity, store=store)
    timeout = args.timeout if args.timeout and args.timeout > 0 else None
    memory_limit = (
        args.memory_limit_mb
        if args.memory_limit_mb and args.memory_limit_mb > 0
        else None
    )
    quarantine = None
    if args.poison_threshold is not None:
        if args.poison_threshold < 1:
            raise SystemExit("error: --poison-threshold must be >= 1")
        quarantine = Quarantine(threshold=args.poison_threshold)
    scrub_interval = args.scrub_interval
    if scrub_interval is not None and scrub_interval <= 0:
        raise SystemExit("error: --scrub-interval must be positive")
    if args.fragment_sessions < 1:
        raise SystemExit("error: --fragment-sessions must be >= 1")
    server = SliceServer(
        cache,
        timeout=timeout,
        workers=args.workers,
        max_queue=args.max_queue,
        executor=args.executor or default_executor(args.workers),
        memory_limit_mb=memory_limit,
        quarantine=quarantine,
        scrub_interval_s=scrub_interval,
        incremental=not args.no_incremental,
        fragment_sessions=args.fragment_sessions,
    )
    server.prestart()
    if args.tcp:
        host, port = _parse_hostport(args.tcp)
        serve_tcp(server, host, port)
    else:
        serve_stdio(server, sys.stdin, sys.stdout)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Thin slicing for MJ programs"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_slice = sub.add_parser("slice", help="compute a slice from a line")
    p_slice.add_argument("file")
    p_slice.add_argument(
        "--line",
        type=int,
        action="append",
        help="seed line; repeat for a batch (one analysis, many slices)",
    )
    p_slice.add_argument(
        "--batch-file",
        metavar="FILE",
        help="file of seed lines (one integer per line, # comments)",
    )
    p_slice.add_argument("--traditional", action="store_true")
    p_slice.add_argument("--no-stdlib", action="store_true")
    p_slice.add_argument("--context", type=int, default=0)
    p_slice.add_argument(
        "--deadline",
        type=float,
        help="give up after this many seconds (cooperative cancellation)",
    )
    p_slice.add_argument("--format", choices=("text", "json"), default="text")
    p_slice.add_argument(
        "--timings",
        action="store_true",
        help="print pipeline stage timings to stderr",
    )
    p_slice.add_argument("--server", metavar="HOST:PORT")
    p_slice.set_defaults(fn=_cmd_slice)

    p_run = sub.add_parser("run", help="run a program's main")
    p_run.add_argument("file")
    p_run.add_argument("args", nargs="*")
    p_run.set_defaults(fn=_cmd_run)

    p_explain = sub.add_parser(
        "explain", help="show governing conditionals for a line"
    )
    p_explain.add_argument("file")
    p_explain.add_argument("--line", type=int, required=True)
    p_explain.add_argument("--no-stdlib", action="store_true")
    p_explain.add_argument("--server", metavar="HOST:PORT")
    p_explain.set_defaults(fn=_cmd_explain)

    p_why = sub.add_parser(
        "why", help="shortest producer-flow path between two lines"
    )
    p_why.add_argument("file")
    p_why.add_argument("--source", type=int, required=True)
    p_why.add_argument("--sink", type=int, required=True)
    p_why.add_argument("--no-stdlib", action="store_true")
    p_why.add_argument("--server", metavar="HOST:PORT")
    p_why.set_defaults(fn=_cmd_why)

    p_chop = sub.add_parser("chop", help="statements between source and sink")
    p_chop.add_argument("file")
    p_chop.add_argument("--source", type=int, required=True)
    p_chop.add_argument("--sink", type=int, required=True)
    p_chop.add_argument("--traditional", action="store_true")
    p_chop.add_argument("--no-stdlib", action="store_true")
    p_chop.add_argument("--server", metavar="HOST:PORT")
    p_chop.set_defaults(fn=_cmd_chop)

    p_dot = sub.add_parser("dot", help="export the SDG (or a slice) as DOT")
    p_dot.add_argument("file")
    p_dot.add_argument("--line", type=int)
    p_dot.add_argument("-o", "--output")
    p_dot.add_argument("--no-stdlib", action="store_true")
    p_dot.set_defaults(fn=_cmd_dot)

    p_stats = sub.add_parser("stats", help="print analysis statistics")
    p_stats.add_argument("file")
    p_stats.add_argument("--no-stdlib", action="store_true")
    p_stats.add_argument("--format", choices=("text", "json"), default="text")
    p_stats.add_argument(
        "--timings",
        action="store_true",
        help="print pipeline stage timings to stderr",
    )
    p_stats.add_argument("--server", metavar="HOST:PORT")
    p_stats.set_defaults(fn=_cmd_stats)

    p_serve = sub.add_parser(
        "serve", help="run the analysis daemon (line-delimited JSON)"
    )
    p_serve.add_argument(
        "--tcp", metavar="HOST:PORT", help="listen on TCP instead of stdio"
    )
    p_serve.add_argument(
        "--cache-dir",
        help="on-disk artifact store (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-server)",
    )
    p_serve.add_argument(
        "--no-disk-cache",
        action="store_true",
        help="keep analyses in memory only",
    )
    p_serve.add_argument("--memory-capacity", type=int, default=8)
    p_serve.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-request budget in seconds (0 disables)",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=4,
        help="analysis worker threads (default: 4)",
    )
    p_serve.add_argument(
        "--executor",
        choices=("thread", "process"),
        default=None,
        help="where cold analyses run: worker threads (GIL-bound) or "
        "worker processes (true multi-core; default when --workers > 1)",
    )
    p_serve.add_argument(
        "--max-queue",
        type=int,
        default=32,
        help="pending requests beyond busy workers before shedding "
        "load with Overloaded (default: 32)",
    )
    p_serve.add_argument(
        "--store-max-mb",
        type=float,
        help="disk store size budget in MiB; oldest artifacts are "
        "evicted after each save",
    )
    p_serve.add_argument(
        "--memory-limit-mb",
        type=float,
        help="per-analysis RSS limit in MiB, enforced by killing the "
        "worker process and answering ResourceExceeded (0 disables; "
        "process executor only)",
    )
    p_serve.add_argument(
        "--poison-threshold",
        type=int,
        default=None,
        help="worker-killing failures of one input before it is "
        "quarantined and answered with PoisonInput (default: 3)",
    )
    p_serve.add_argument(
        "--scrub-interval",
        type=float,
        default=None,
        help="seconds between background deep-verify sweeps of the "
        "disk store; corrupt artifacts are quarantined under "
        "corrupt/ (default: no scrubber; first sweep runs at start)",
    )
    p_serve.add_argument(
        "--no-incremental",
        action="store_true",
        help="disable the per-function fragment store (edited sources "
        "always fall back to cold analysis)",
    )
    p_serve.add_argument(
        "--fragment-sessions",
        type=int,
        default=4,
        help="live incremental edit sessions kept per daemon "
        "(LRU by program structure; default: 4)",
    )
    p_serve.add_argument(
        "--quiet", action="store_true", help="suppress structured logs"
    )
    p_serve.add_argument(
        "--shards",
        type=int,
        default=0,
        help="spawn this many local shard daemons and serve a "
        "consistent-hash router in front of them on --tcp",
    )
    p_serve.add_argument(
        "--probe-interval",
        type=float,
        default=1.0,
        help="seconds between shard health probes (--shards mode)",
    )
    p_serve.add_argument(
        "--replicas",
        type=int,
        default=64,
        help="virtual nodes per shard on the hash ring (--shards mode)",
    )
    p_serve.add_argument(
        "--no-respawn",
        action="store_true",
        help="do not respawn locally spawned shards that die "
        "(--shards mode; default is to respawn on the same port)",
    )
    p_serve.add_argument(
        "--replicate",
        type=int,
        default=2,
        help="total copies of each artifact across the shard tier "
        "(--shards mode with a disk store; 1 disables replication; "
        "default: 2)",
    )
    p_serve.add_argument(
        "--repair-interval",
        type=float,
        default=None,
        help="seconds between anti-entropy repair passes that "
        "re-converge replicas after a shard was down (--shards mode; "
        "0 disables; default: 30)",
    )
    p_serve.add_argument(
        "--hedge-delay",
        type=float,
        default=None,
        help="seconds before a slow keyed request is hedged to its "
        "first replica (0 disables hedging; default: adaptive p95 of "
        "observed forward latency)",
    )
    p_serve.set_defaults(fn=_cmd_serve)

    p_route = sub.add_parser(
        "route",
        help="serve a consistent-hash router over externally managed "
        "shard daemons",
    )
    p_route.add_argument(
        "--shard",
        metavar="HOST:PORT",
        action="append",
        default=None,
        help="a running `repro serve --tcp` daemon; repeat per shard",
    )
    p_route.add_argument(
        "--tcp",
        metavar="HOST:PORT",
        default="127.0.0.1:0",
        help="router listen address (default: an ephemeral local port, "
        "reported by the structured `listening` log line)",
    )
    p_route.add_argument(
        "--probe-interval",
        type=float,
        default=1.0,
        help="seconds between shard health probes (default: 1)",
    )
    p_route.add_argument(
        "--failure-threshold",
        type=int,
        default=2,
        help="consecutive failures before a shard is marked unhealthy "
        "(default: 2)",
    )
    p_route.add_argument(
        "--replicas",
        type=int,
        default=64,
        help="virtual nodes per shard on the hash ring (default: 64)",
    )
    p_route.add_argument(
        "--max-inflight",
        type=int,
        default=16,
        help="concurrently forwarded requests (default: 16)",
    )
    p_route.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help="admitted-but-waiting requests beyond --max-inflight "
        "before shedding Overloaded (default: 64)",
    )
    p_route.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        help="per-forward transport timeout in seconds (default: 30)",
    )
    p_route.add_argument(
        "--hedge-delay",
        type=float,
        default=None,
        help="seconds before a slow keyed request is hedged to its "
        "first replica (0 disables hedging; default: adaptive p95 of "
        "observed forward latency)",
    )
    p_route.add_argument(
        "--rolling-restart",
        metavar="HOST:PORT",
        default=None,
        help="instead of serving, ask the running router at HOST:PORT "
        "to drain and respawn each of its shards in turn, print the "
        "summary, and exit (non-zero if any shard failed)",
    )
    p_route.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="seconds to wait for each shard's in-flight requests to "
        "finish during --rolling-restart (default: 30)",
    )
    p_route.add_argument(
        "--quiet", action="store_true", help="suppress structured logs"
    )
    p_route.set_defaults(fn=_cmd_route)

    p_health = sub.add_parser(
        "health", help="query a running daemon's load and counters"
    )
    p_health.add_argument("--server", metavar="HOST:PORT", required=True)
    p_health.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    p_health.set_defaults(fn=_cmd_health)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="fuzz the analyzer: every input must end in a slice or a "
        "structured error, never a crash or hang",
    )
    p_fuzz.add_argument(
        "--budget",
        default="60s",
        help="campaign wall-clock budget, e.g. 60, 60s, 5m (default: 60s)",
    )
    p_fuzz.add_argument(
        "--seed",
        type=int,
        default=0,
        help="campaign seed; every input derives from it (default: 0)",
    )
    p_fuzz.add_argument(
        "--crash-dir",
        default="crashes",
        help="write minimized failing inputs here (default: ./crashes)",
    )
    p_fuzz.add_argument(
        "--corpus",
        help="directory of extra .mj seeds to mutate (e.g. tests/corpus); "
        "the paper suite is always included",
    )
    p_fuzz.add_argument(
        "--input-budget",
        type=float,
        default=5.0,
        help="per-input analysis budget in seconds (default: 5)",
    )
    p_fuzz.add_argument(
        "--max-inputs",
        type=int,
        help="stop after this many inputs even if time remains",
    )
    p_fuzz.add_argument("--format", choices=("text", "json"), default="text")
    p_fuzz.set_defaults(fn=_cmd_fuzz)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
