"""Command-line interface: ``python -m repro.cli``.

Subcommands::

    slice FILE --line N [--traditional] [--no-stdlib] [--context N]
    run FILE [ARG ...]
    explain FILE --line N            # control explainers for a line
    why FILE --source N --sink M     # producer path between two lines
    chop FILE --source N --sink M    # thin chop between two lines
    dot FILE [--line N] [-o OUT]     # Graphviz export (slice or full)
    stats FILE                       # analysis statistics

``FILE`` may also be the name of a shipped suite program (e.g.
``figure1``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import analyze
from repro.slicing.expansion import control_explainers
from repro.suite.loader import load_source, program_names


def _read_program(spec: str) -> tuple[str, str]:
    path = Path(spec)
    if path.exists():
        return path.read_text(), path.name
    if spec in program_names():
        return load_source(spec), f"{spec}.mj"
    raise SystemExit(
        f"error: {spec!r} is neither a file nor a suite program "
        f"(known: {', '.join(program_names())})"
    )


def _cmd_slice(args: argparse.Namespace) -> int:
    source, name = _read_program(args.file)
    analyzed = analyze(source, name, include_stdlib=not args.no_stdlib)
    slicer = (
        analyzed.traditional_slicer if args.traditional else analyzed.thin_slicer
    )
    result = slicer.slice_from_line(args.line)
    if not result.seeds:
        print(f"no statements found at {name}:{args.line}", file=sys.stderr)
        return 1
    flavor = "traditional" if args.traditional else "thin"
    print(f"{flavor} slice from {name}:{args.line} "
          f"({len(result.lines)} lines):\n")
    print(result.source_view(context=args.context))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    source, name = _read_program(args.file)
    analyzed = analyze(source, name)
    result = analyzed.run(args.args)
    for line in result.output:
        print(line)
    if result.error is not None:
        print(f"uncaught exception: {result.error}", file=sys.stderr)
        return 1
    if result.timed_out:
        print("execution timed out", file=sys.stderr)
        return 2
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    source, name = _read_program(args.file)
    analyzed = analyze(source, name, include_stdlib=not args.no_stdlib)
    instrs = [
        i
        for i in analyzed.compiled.instructions_at_line(args.line)
        if analyzed.sdg.nodes_of_instruction(i)
    ]
    if not instrs:
        print(f"no statements found at {name}:{args.line}", file=sys.stderr)
        return 1
    lines = analyzed.compiled.source.lines()
    shown: set[int] = set()
    for instr in instrs:
        explanation = control_explainers(analyzed.sdg, instr)
        for conditional in explanation.conditionals:
            line = conditional.position.line
            if line in shown or not (1 <= line <= len(lines)):
                continue
            shown.add(line)
            print(f"{line:5d}  {lines[line - 1]}")
    if not shown:
        print("(no governing conditionals)")
    return 0


def _cmd_why(args: argparse.Namespace) -> int:
    from repro.tooling.navigator import Navigator

    source, name = _read_program(args.file)
    analyzed = analyze(source, name, include_stdlib=not args.no_stdlib)
    navigator = Navigator(analyzed.compiled, analyzed.sdg)
    path = navigator.why(args.source, args.sink)
    if path is None:
        print(
            f"no producer-flow path from {name}:{args.source} to "
            f"{name}:{args.sink}",
            file=sys.stderr,
        )
        return 1
    print(
        f"value flow from {name}:{args.source} to {name}:{args.sink}:\n"
    )
    print(navigator.render_path(path))
    return 0


def _cmd_chop(args: argparse.Namespace) -> int:
    from repro.slicing.chopping import thin_chop, traditional_chop

    source, name = _read_program(args.file)
    analyzed = analyze(source, name, include_stdlib=not args.no_stdlib)
    chopper = traditional_chop if args.traditional else thin_chop
    result = chopper(analyzed.compiled, analyzed.sdg, args.source, args.sink)
    if result.empty:
        print(
            f"empty chop: {name}:{args.source} does not reach "
            f"{name}:{args.sink}",
            file=sys.stderr,
        )
        return 1
    lines = analyzed.compiled.source.lines()
    flavor = "traditional" if args.traditional else "thin"
    print(f"{flavor} chop ({len(result.lines)} lines):")
    for line in sorted(result.lines):
        if 1 <= line <= len(lines):
            print(f"  {line:5d}  {lines[line - 1].strip()}")
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    from repro.sdg.export import sdg_to_dot, slice_to_dot

    source, name = _read_program(args.file)
    analyzed = analyze(source, name, include_stdlib=not args.no_stdlib)
    if args.line is not None:
        result = analyzed.thin_slicer.slice_from_line(args.line)
        if not result.seeds:
            print(f"no statements found at {name}:{args.line}", file=sys.stderr)
            return 1
        dot = slice_to_dot(result, analyzed.sdg, title=f"{name}:{args.line}")
    else:
        dot = sdg_to_dot(analyzed.sdg, title=name)
    if args.output:
        Path(args.output).write_text(dot + "\n")
        print(f"wrote {args.output}")
    else:
        print(dot)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    source, name = _read_program(args.file)
    analyzed = analyze(source, name, include_stdlib=not args.no_stdlib)
    graph = analyzed.pts.call_graph
    print(f"program:            {name}")
    print(f"classes:            {len(analyzed.compiled.table.classes)}")
    print(f"functions (IR):     {len(analyzed.compiled.ir.functions)}")
    print(f"reachable functions:{graph.function_count():6d}")
    print(f"call graph nodes:   {graph.node_count():6d}")
    print(f"call graph edges:   {graph.edge_count():6d}")
    print(f"SDG statements:     {analyzed.sdg.statement_count():6d}")
    print(f"SDG edges:          {analyzed.sdg.edge_count():6d}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Thin slicing for MJ programs"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_slice = sub.add_parser("slice", help="compute a slice from a line")
    p_slice.add_argument("file")
    p_slice.add_argument("--line", type=int, required=True)
    p_slice.add_argument("--traditional", action="store_true")
    p_slice.add_argument("--no-stdlib", action="store_true")
    p_slice.add_argument("--context", type=int, default=0)
    p_slice.set_defaults(fn=_cmd_slice)

    p_run = sub.add_parser("run", help="run a program's main")
    p_run.add_argument("file")
    p_run.add_argument("args", nargs="*")
    p_run.set_defaults(fn=_cmd_run)

    p_explain = sub.add_parser(
        "explain", help="show governing conditionals for a line"
    )
    p_explain.add_argument("file")
    p_explain.add_argument("--line", type=int, required=True)
    p_explain.add_argument("--no-stdlib", action="store_true")
    p_explain.set_defaults(fn=_cmd_explain)

    p_why = sub.add_parser(
        "why", help="shortest producer-flow path between two lines"
    )
    p_why.add_argument("file")
    p_why.add_argument("--source", type=int, required=True)
    p_why.add_argument("--sink", type=int, required=True)
    p_why.add_argument("--no-stdlib", action="store_true")
    p_why.set_defaults(fn=_cmd_why)

    p_chop = sub.add_parser("chop", help="statements between source and sink")
    p_chop.add_argument("file")
    p_chop.add_argument("--source", type=int, required=True)
    p_chop.add_argument("--sink", type=int, required=True)
    p_chop.add_argument("--traditional", action="store_true")
    p_chop.add_argument("--no-stdlib", action="store_true")
    p_chop.set_defaults(fn=_cmd_chop)

    p_dot = sub.add_parser("dot", help="export the SDG (or a slice) as DOT")
    p_dot.add_argument("file")
    p_dot.add_argument("--line", type=int)
    p_dot.add_argument("-o", "--output")
    p_dot.add_argument("--no-stdlib", action="store_true")
    p_dot.set_defaults(fn=_cmd_dot)

    p_stats = sub.add_parser("stats", help="print analysis statistics")
    p_stats.add_argument("file")
    p_stats.add_argument("--no-stdlib", action="store_true")
    p_stats.set_defaults(fn=_cmd_stats)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
