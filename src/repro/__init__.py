"""repro — a from-scratch reproduction of *Thin Slicing* (PLDI 2007).

The package implements the paper's full stack on MJ, a Java-like
language built for the purpose:

* :mod:`repro.lang` — lexer, parser, type checker;
* :mod:`repro.ir` — CFG IR with SSA;
* :mod:`repro.analysis` — Andersen points-to with on-the-fly call graph
  and object-sensitive container cloning; mod-ref;
* :mod:`repro.sdg` — system dependence graphs (direct-heap and
  heap-parameter modes);
* :mod:`repro.slicing` — thin and traditional slicers (context-
  insensitive and tabulation-based context-sensitive), hierarchical
  expansion, and the BFS inspection metric;
* :mod:`repro.interp` — a reference interpreter;
* :mod:`repro.suite` — benchmark programs, injected bugs, tough casts.

Quickstart::

    from repro import analyze, thin_slice

    analyzed = analyze(source_text, include_stdlib=True)
    result = thin_slice(analyzed, line=26)
    print(result.source_view())
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.analysis.modref import ModRefResult, compute_modref
from repro.budget import Budget, BudgetExceeded
from repro.analysis.pointsto import (
    DEFAULT_CONTAINER_CLASSES,
    PointsToResult,
    solve_points_to,
)
from repro.frontend import CompiledProgram, compile_source
from repro.interp.interpreter import run_program
from repro.resources import ResourceExceeded
from repro.profiling import StageProfiler
from repro.interp.values import ExecutionResult
from repro.sdg.sdg import SDG, build_sdg
from repro.slicing.engine import SliceResult
from repro.slicing.thin import ThinSlicer
from repro.slicing.traditional import TraditionalSlicer

__version__ = "1.0.0"


@dataclass(frozen=True)
class AnalyzeOptions:
    """Every knob that changes what :func:`analyze` computes.

    Frozen and hashable so an ``(source digest, options)`` pair can key
    a cache (see :mod:`repro.server.cache`).  :meth:`cache_token`
    renders the options as a stable string for content addressing.
    """

    include_stdlib: bool = True
    containers: frozenset[str] | None = DEFAULT_CONTAINER_CLASSES
    heap_mode: str = "direct"
    include_control: bool = True
    #: Cooperative cancellation token for this one request.  Runtime
    #: state, not configuration: excluded from equality/hash and from
    #: :meth:`cache_token`, and stripped from the options stored on the
    #: resulting :class:`AnalyzedProgram` (cached artifacts must never
    #: reference a request-scoped budget).
    budget: Budget | None = field(default=None, compare=False)
    #: Worker-memory cap in MiB for this analysis, or None (uncapped).
    #: Enforced by the process executor — the parent polls worker RSS
    #: and kills an overgrown worker, surfacing a structured
    #: :class:`~repro.resources.ResourceExceeded`; a setrlimit backstop
    #: inside the worker catches allocation bursts between polls.  Like
    #: ``budget`` this is resource policy, not analysis configuration:
    #: excluded from equality/hash and from :meth:`cache_token` (the
    #: artifact a capped analysis produces is byte-identical to an
    #: uncapped one).
    memory_limit_mb: float | None = field(default=None, compare=False)

    def cache_token(self) -> str:
        containers = (
            "none" if self.containers is None else ",".join(sorted(self.containers))
        )
        return (
            f"stdlib={int(self.include_stdlib)};containers={containers};"
            f"heap={self.heap_mode};control={int(self.include_control)}"
        )


@dataclass
class AnalyzedProgram:
    """A compiled program with its analyses and shared SDG."""

    compiled: CompiledProgram
    pts: PointsToResult
    sdg: SDG
    options: AnalyzeOptions = AnalyzeOptions()
    #: Per-stage wall time of the cold analysis that produced this
    #: object (a ``StageProfiler.as_dict()`` snapshot), or None.
    timings: dict | None = None

    @property
    def thin_slicer(self) -> ThinSlicer:
        return ThinSlicer(self.compiled, self.sdg)

    @property
    def traditional_slicer(self) -> TraditionalSlicer:
        return TraditionalSlicer(self.compiled, self.sdg)

    def run(self, args: list[str] | None = None) -> ExecutionResult:
        return run_program(self.compiled.ast, self.compiled.table, args)


def analyze(
    source: str,
    filename: str = "<input>",
    include_stdlib: bool = True,
    containers: frozenset[str] | None = DEFAULT_CONTAINER_CLASSES,
    options: AnalyzeOptions | None = None,
    profiler: StageProfiler | None = None,
) -> AnalyzedProgram:
    """Compile + points-to + SDG in one call (the common tool pipeline).

    ``options`` bundles every knob into one hashable value; when given
    it overrides the individual keyword arguments.  Stage timings are
    always collected (see :class:`~repro.profiling.StageProfiler`) and
    stored on the returned program's ``timings`` attribute.
    """
    if options is None:
        options = AnalyzeOptions(
            include_stdlib=include_stdlib, containers=containers
        )
    if profiler is None:
        profiler = StageProfiler()
    budget = options.budget
    compiled = compile_source(
        source, filename, include_stdlib=options.include_stdlib,
        profiler=profiler, budget=budget,
    )
    with profiler.stage("pointsto"):
        pts = solve_points_to(
            compiled.ir, containers=options.containers, budget=budget
        )
    with profiler.stage("sdg"):
        sdg = build_sdg(
            compiled,
            pts,
            heap_mode=options.heap_mode,
            include_control=options.include_control,
            budget=budget,
        )
    profiler.add_count("pts_keys", len(pts.pts))
    profiler.add_count("call_graph_nodes", pts.call_graph.node_count())
    profiler.add_count("sdg_nodes", sdg.node_count())
    profiler.add_count("sdg_edges", sdg.edge_count())
    if budget is not None or options.memory_limit_mb is not None:
        # Cached artifacts outlive the request; never let them hold
        # request-scoped resource policy (and keep artifact bytes
        # independent of the cap the producing request ran under).
        options = replace(options, budget=None, memory_limit_mb=None)
    return AnalyzedProgram(compiled, pts, sdg, options, profiler.as_dict())


def thin_slice(analyzed: AnalyzedProgram, line: int) -> SliceResult:
    """Thin slice seeded at every statement on ``line``."""
    return analyzed.thin_slicer.slice_from_line(line)


def traditional_slice(analyzed: AnalyzedProgram, line: int) -> SliceResult:
    """Traditional backward slice seeded at every statement on ``line``."""
    return analyzed.traditional_slicer.slice_from_line(line)


__all__ = [
    "AnalyzeOptions",
    "AnalyzedProgram",
    "Budget",
    "BudgetExceeded",
    "CompiledProgram",
    "DEFAULT_CONTAINER_CLASSES",
    "ExecutionResult",
    "ModRefResult",
    "PointsToResult",
    "ResourceExceeded",
    "SDG",
    "SliceResult",
    "StageProfiler",
    "ThinSlicer",
    "TraditionalSlicer",
    "analyze",
    "build_sdg",
    "compile_source",
    "compute_modref",
    "run_program",
    "solve_points_to",
    "thin_slice",
    "traditional_slice",
    "__version__",
]
