"""Experiment harness: everything needed to regenerate Tables 1-3.

This module contains the measurement logic; ``benchmarks/`` contains the
pytest-benchmark entry points that print the tables.  Results are plain
dataclasses so tests can assert the paper's qualitative claims (thin ≤
traditional, object-sensitivity matters, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.analysis.pointsto import (
    DEFAULT_CONTAINER_CLASSES,
    PointsToResult,
    solve_points_to,
)
from repro.frontend import CompiledProgram, compile_source
from repro.interp.interpreter import run_program
from repro.interp.values import ExecutionResult
from repro.sdg.sdg import SDG, build_sdg
from repro.slicing.inspection import InspectionResult, count_inspected
from repro.slicing.thin import ExpandedThinSlicer, ThinSlicer
from repro.slicing.traditional import TraditionalSlicer
from repro.suite.bugs import InjectedBug, resolve_task
from repro.suite.casts import ToughCast, resolve_cast_lines
from repro.suite.loader import load_source

SUITE_PROGRAMS = (
    "minixml",
    "jtopas",
    "minibuild",
    "xmlsec",
    "rules",
    "minijavac",
    "parsegen",
    "raytrace",
)


@dataclass
class AnalysisBundle:
    """Compiled program + points-to + shared SDG for one configuration."""

    compiled: CompiledProgram
    pts: PointsToResult
    sdg: SDG
    object_sensitive: bool

    def thin_slicer(self, alias_levels: int = 0) -> ThinSlicer:
        if alias_levels > 0:
            return ExpandedThinSlicer(self.compiled, self.sdg, alias_levels)
        return ThinSlicer(self.compiled, self.sdg)

    def traditional_slicer(self) -> TraditionalSlicer:
        return TraditionalSlicer(self.compiled, self.sdg)


@lru_cache(maxsize=64)
def _analyze_cached(source: str, filename: str, object_sensitive: bool) -> AnalysisBundle:
    compiled = compile_source(source, filename, include_stdlib=True)
    containers = DEFAULT_CONTAINER_CLASSES if object_sensitive else frozenset()
    pts = solve_points_to(compiled.ir, containers=containers)
    sdg = build_sdg(compiled, pts, heap_mode="direct", include_control=True)
    return AnalysisBundle(compiled, pts, sdg, object_sensitive)


def analyze_source(
    source: str, filename: str, object_sensitive: bool = True
) -> AnalysisBundle:
    return _analyze_cached(source, filename, object_sensitive)


def analyze_program(name: str, object_sensitive: bool = True) -> AnalysisBundle:
    return analyze_source(load_source(name), f"{name}.mj", object_sensitive)


# ---------------------------------------------------------------------------
# Running programs (the SIR failure-exposure step)
# ---------------------------------------------------------------------------


def run_source(source: str, filename: str, args) -> ExecutionResult:
    compiled = compile_source(source, filename, include_stdlib=True)
    return run_program(compiled.ast, compiled.table, list(args))


def bug_manifests(bug: InjectedBug) -> bool:
    """True when the buggy variant visibly fails its test input."""
    fixed = run_source(load_source(bug.program), bug.program, bug.args)
    buggy = run_source(bug.apply(), bug.program, bug.args)
    if fixed.failed:
        raise AssertionError(f"{bug.bug_id}: fixed program fails its test")
    return buggy.failed or buggy.output != fixed.output


# ---------------------------------------------------------------------------
# Table 2: debugging tasks
# ---------------------------------------------------------------------------


@dataclass
class BugMeasurement:
    bug_id: str
    thin: InspectionResult
    traditional: InspectionResult
    thin_noobj: InspectionResult
    trad_noobj: InspectionResult
    n_control: int

    @property
    def ratio(self) -> float:
        if self.thin.inspected == 0:
            return 1.0
        return self.traditional.inspected / self.thin.inspected


def measure_bug(bug: InjectedBug) -> BugMeasurement:
    """Measure one Table 2 row (both sensitivities)."""
    buggy_source = bug.apply()
    results: dict[bool, tuple[InspectionResult, InspectionResult]] = {}
    for object_sensitive in (True, False):
        bundle = analyze_source(
            buggy_source, f"{bug.bug_id}.mj", object_sensitive
        )
        task = resolve_task(bug, bundle.compiled.source.text)
        seeds = task.seed_lines()
        alias_levels = bug.alias_levels if bug.needs_alias_expansion else 0
        thin = count_inspected(
            bundle.thin_slicer(alias_levels), seeds, set(task.desired),
            bug.n_control,
        )
        trad = count_inspected(
            bundle.traditional_slicer(), seeds, set(task.desired),
            bug.n_control,
        )
        results[object_sensitive] = (thin, trad)
    thin, trad = results[True]
    thin_no, trad_no = results[False]
    return BugMeasurement(bug.bug_id, thin, trad, thin_no, trad_no, bug.n_control)


# ---------------------------------------------------------------------------
# Table 3: tough casts
# ---------------------------------------------------------------------------


@dataclass
class CastMeasurement:
    cast_id: str
    thin: InspectionResult
    traditional: InspectionResult
    thin_noobj: InspectionResult
    trad_noobj: InspectionResult
    n_control: int
    verified_by_pointer_analysis: bool

    @property
    def ratio(self) -> float:
        if self.thin.inspected == 0:
            return 1.0
        return self.traditional.inspected / self.thin.inspected


def cast_is_verified(bundle: AnalysisBundle, cast_line: int) -> bool:
    """Would the points-to analysis alone prove this cast safe?

    Mirrors the paper's definition of tough cast: verified iff every
    abstract object reaching the cast source is a subtype of the target.
    """
    from repro.ir import instructions as ins
    from repro.lang.types import ClassType

    table = bundle.compiled.table
    for instr in bundle.compiled.instructions_at_line(cast_line):
        if not isinstance(instr, ins.Cast):
            continue
        target = instr.target_type
        if not isinstance(target, ClassType):
            continue
        function = bundle.compiled.ir.function_of(instr).name
        objs = bundle.pts.points_to(function, instr.src)
        if not objs:
            continue
        for obj in objs:
            if obj.kind != "object" or not table.is_subclass(
                obj.class_name, target.name
            ):
                return False
        return True
    return False


def measure_cast(cast: ToughCast) -> CastMeasurement:
    results: dict[bool, tuple[InspectionResult, InspectionResult]] = {}
    verified = False
    for object_sensitive in (True, False):
        bundle = analyze_program(cast.program, object_sensitive)
        cast_line, desired, control_seeds = resolve_cast_lines(
            cast, bundle.compiled.source.text
        )
        if object_sensitive:
            verified = cast_is_verified(bundle, cast_line)
        seeds = [cast_line, *sorted(control_seeds)]
        thin = count_inspected(
            bundle.thin_slicer(), seeds, set(desired), cast.n_control
        )
        trad = count_inspected(
            bundle.traditional_slicer(), seeds, set(desired), cast.n_control
        )
        results[object_sensitive] = (thin, trad)
    thin, trad = results[True]
    thin_no, trad_no = results[False]
    return CastMeasurement(
        cast.cast_id, thin, trad, thin_no, trad_no, cast.n_control, verified
    )


# ---------------------------------------------------------------------------
# Table 1: benchmark characteristics
# ---------------------------------------------------------------------------


@dataclass
class ProgramStats:
    program: str
    classes: int
    methods_reachable: int
    call_graph_nodes: int
    call_graph_edges: int
    sdg_statements: int
    sdg_edges: int


def program_stats(name: str, object_sensitive: bool = True) -> ProgramStats:
    bundle = analyze_program(name, object_sensitive)
    graph = bundle.pts.call_graph
    return ProgramStats(
        program=name,
        classes=len(bundle.compiled.table.classes),
        methods_reachable=graph.function_count(),
        call_graph_nodes=graph.node_count(),
        call_graph_edges=graph.edge_count(),
        sdg_statements=bundle.sdg.statement_count(),
        sdg_edges=bundle.sdg.edge_count(),
    )
