"""Loading of suite programs (``.mj`` files shipped as package data)."""

from __future__ import annotations

from functools import lru_cache
from pathlib import Path

_PROGRAMS_DIR = Path(__file__).parent / "programs"


def program_names() -> list[str]:
    """All shipped program names (file stems), stdlib excluded."""
    return sorted(
        p.stem for p in _PROGRAMS_DIR.glob("*.mj") if p.stem != "stdlib"
    )


@lru_cache(maxsize=None)
def load_source(name: str) -> str:
    """Raw text of the named suite program (or 'stdlib')."""
    path = _PROGRAMS_DIR / f"{name}.mj"
    if not path.exists():
        raise FileNotFoundError(f"no suite program named {name!r}")
    return path.read_text()


def load_stdlib() -> str:
    return load_source("stdlib")
