"""Benchmark suite: MJ programs, injected bugs, and tough-cast registry."""

from repro.suite.loader import load_source, load_stdlib, program_names

__all__ = ["load_source", "load_stdlib", "program_names"]
