"""Injected-bug registry — the suite's analog of the SIR bugs of §6.2.

Each bug is a single-line rewrite of a tagged line of a suite program.
The registry records, per bug, the SIR-style experimental protocol:

* ``args`` — the test input that exposes the failure (running the fixed
  program and the buggy program must differ: a crash or wrong output);
* ``seed_marker`` — the failure point the user slices from;
* ``desired_markers`` — the statements whose discovery completes the
  debugging task (usually the injected line itself);
* ``control_markers`` — pre-determined relevant conditionals the user
  additionally thin-slices from (§4.2/§6.1 methodology); their count is
  part of ``n_control``, which is added to both techniques' totals;
* ``slicing_helpful`` — False for the xml-security-style bugs buried in
  hash internals, which the paper excludes from Table 2;
* ``needs_alias_expansion`` — the nanoxml-5 analog, measured with one
  level of aliasing expansion enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.source import find_markers
from repro.suite.loader import load_source


@dataclass(frozen=True)
class InjectedBug:
    bug_id: str
    program: str
    marker: str  # tag of the line to rewrite
    buggy_code: str  # replacement statement text (tag is re-appended)
    seed_marker: str
    desired_markers: tuple[str, ...]
    args: tuple[str, ...]
    n_control: int = 0
    control_markers: tuple[str, ...] = ()
    slicing_helpful: bool = True
    needs_alias_expansion: bool = False
    alias_levels: int = 1  # expansion depth when needs_alias_expansion
    description: str = ""

    def apply(self, source: str | None = None) -> str:
        """Return the program text with this bug injected."""
        if source is None:
            source = load_source(self.program)
        return _rewrite_marked_line(source, self.marker, self.buggy_code)


def _rewrite_marked_line(source: str, marker: str, new_code: str) -> str:
    tag = f"//@tag:{marker}"
    lines = source.splitlines()
    for index, line in enumerate(lines):
        if tag in line and line.strip().startswith("//") is False:
            indent = line[: len(line) - len(line.lstrip())]
            lines[index] = f"{indent}{new_code}   {tag}"
            return "\n".join(lines) + "\n"
    raise KeyError(f"no code line tagged {marker}")


_XML_INPUT = "<a id='42'><b>hi</b><c x='1'></c></a>"
_XML_TEXT_INPUT = "<a id='7'><b>hi<c x='1'></c>yo</b></a>"
_BUILD_SCRIPT = (
    "prop name world; target lib = javac lib.java; "
    "target app : lib = echo hello ${name}; target all : app lib = jar app.jar"
)
_SEC_DOC = "Hello XML  Security"
_SEC_HASH = "7301"

BUGS: dict[str, InjectedBug] = {}


def _bug(**kwargs) -> None:
    bug = InjectedBug(**kwargs)
    BUGS[bug.bug_id] = bug


# ---------------------------------------------------------------------------
# minixml (nanoxml analog)
# ---------------------------------------------------------------------------

_bug(
    bug_id="minixml-1",
    program="minixml",
    marker="childget",
    buggy_code="return (XElement) children.get(i + 1);",
    seed_marker="childget",
    desired_markers=("childget",),
    args=(_XML_INPUT,),
    description="crash at the buggy statement itself (jtopas-1 style)",
)

_bug(
    bug_id="minixml-2",
    program="minixml",
    marker="valuesub",
    buggy_code="String value = input.substring(start, pos - 1);",
    seed_marker="printid",
    desired_markers=("valuesub",),
    args=(_XML_INPUT,),
    description="attribute value truncated; flows through HashMap",
)

_bug(
    bug_id="minixml-3",
    program="minixml",
    marker="namesub",
    buggy_code="String name = input.substring(start + 1, pos);",
    seed_marker="closecheck",
    desired_markers=("namesub",),
    n_control=1,
    args=(_XML_INPUT,),
    description="element names mangled; mismatched-close-tag crash",
)

_bug(
    bug_id="minixml-4",
    program="minixml",
    marker="appendtext",
    buggy_code="text = s;",
    seed_marker="printtext",
    desired_markers=("appendtext",),
    args=(_XML_TEXT_INPUT,),
    description="text accumulation drops earlier chunks",
)

_bug(
    bug_id="minixml-5",
    program="minixml",
    marker="aliastouch",
    buggy_code="alias.reset();",
    seed_marker="printid",
    desired_markers=("reset", "aliastouch"),
    n_control=1,
    control_markers=("mapgetkey",),
    args=(_XML_INPUT, "reset"),
    needs_alias_expansion=True,
    alias_levels=2,  # the HashMap's bucket-array->entry chain is 2 deep
    description="attributes cleared through a registry alias (nanoxml-5)",
)

_bug(
    bug_id="minixml-6",
    program="minixml",
    marker="attrstore",
    buggy_code="element.setAttr(key, key);",
    seed_marker="printid",
    desired_markers=("attrstore",),
    args=(_XML_INPUT,),
    description="wrong variable stored as attribute value",
)

# ---------------------------------------------------------------------------
# jtopas (tokenizer)
# ---------------------------------------------------------------------------

_bug(
    bug_id="jtopas-1",
    program="jtopas",
    marker="firsttok",
    buggy_code="Token first = tok.tokenAt(tok.count());",
    seed_marker="firsttok",
    desired_markers=("firsttok",),
    args=('foo 12 + "bar baz" x9',),
    description="out-of-range access fails at the buggy statement",
)

_bug(
    bug_id="jtopas-2",
    program="jtopas",
    marker="numtok",
    buggy_code="return new Token(WORD, text, start);",
    seed_marker="printnums",
    desired_markers=("numtok",),
    n_control=1,
    control_markers=("kindtest",),
    args=('foo 12 + "bar baz" x9',),
    description="numbers mis-tagged as words; counts wrong",
)

# ---------------------------------------------------------------------------
# minibuild (ant analog)
# ---------------------------------------------------------------------------

_bug(
    bug_id="minibuild-1",
    program="minibuild",
    marker="propval",
    buggy_code="String value = rest.substring(0, sp).trim();",
    seed_marker="printlog",
    desired_markers=("propval",),
    args=(_BUILD_SCRIPT,),
    description="property value replaced by its key",
)

_bug(
    bug_id="minibuild-2",
    program="minibuild",
    marker="expandkey",
    buggy_code="String key = text.substring(i + 2, close + 1);",
    seed_marker="printlog",
    desired_markers=("expandkey",),
    args=(_BUILD_SCRIPT,),
    description="property reference parsed with the closing brace",
)

_bug(
    bug_id="minibuild-3",
    program="minibuild",
    marker="clsjar",
    buggy_code='if (text.startsWith("jar")) { return 7; }',
    seed_marker="printlog",
    desired_markers=("clsjar",),
    n_control=12,
    args=(_BUILD_SCRIPT,),
    description="wrong category code in a 12-return classifier (ant-3)",
)

_bug(
    bug_id="minibuild-4",
    program="minibuild",
    marker="tgtname",
    buggy_code="name = head.substring(0, colon - 2).trim();",
    seed_marker="lookup",
    desired_markers=("tgtname",),
    n_control=2,
    control_markers=("mapgetkey",),
    args=(_BUILD_SCRIPT,),
    description="target name truncated; dependency lookup fails",
)

# ---------------------------------------------------------------------------
# xmlsec (xml-security analog)
# ---------------------------------------------------------------------------

_bug(
    bug_id="xmlsec-1",
    program="xmlsec",
    marker="check",
    buggy_code="if (got.equals(expectedText)) {",
    seed_marker="seedmismatch",
    desired_markers=("check",),
    n_control=1,
    control_markers=("check",),
    args=(_SEC_DOC, _SEC_HASH),
    description="inverted verification check, adjacent to the failure",
)

_bug(
    bug_id="xmlsec-2",
    program="xmlsec",
    marker="mixstep",
    buggy_code="state = state * 29 + value;",
    seed_marker="seedmismatch",
    desired_markers=("mixstep",),
    args=(_SEC_DOC, _SEC_HASH),
    slicing_helpful=False,
    description="mixing constant wrong, buried in hash internals",
)

_bug(
    bug_id="xmlsec-3",
    program="xmlsec",
    marker="blockstep",
    buggy_code="h = h * 130 + text.charAt(i).hashCode();",
    seed_marker="seedmismatch",
    desired_markers=("blockstep",),
    args=(_SEC_DOC, _SEC_HASH),
    slicing_helpful=False,
    description="block hash constant wrong",
)

_bug(
    bug_id="xmlsec-4",
    program="xmlsec",
    marker="padcalc",
    buggy_code="return BLOCK - rem + 1;",
    seed_marker="seedmismatch",
    desired_markers=("padcalc",),
    args=(_SEC_DOC, _SEC_HASH),
    slicing_helpful=False,
    description="padding computation off by one",
)

_bug(
    bug_id="xmlsec-5",
    program="xmlsec",
    marker="mixseed",
    buggy_code="state = seed + 1;",
    seed_marker="seedmismatch",
    desired_markers=("mixseed",),
    args=(_SEC_DOC, _SEC_HASH),
    slicing_helpful=False,
    description="mixer seeded wrongly",
)

_bug(
    bug_id="xmlsec-6",
    program="xmlsec",
    marker="canonspace",
    buggy_code='if (!lastSpace) { out.append("  "); }',
    seed_marker="seedmismatch",
    desired_markers=("canonspace",),
    args=(_SEC_DOC, _SEC_HASH),
    slicing_helpful=False,
    description="canonicalizer emits double spaces",
)


# ---------------------------------------------------------------------------
# Derived helpers
# ---------------------------------------------------------------------------


def all_bugs() -> list[InjectedBug]:
    return [BUGS[k] for k in sorted(BUGS)]


def bugs_for_table2() -> list[InjectedBug]:
    """The rows that appear in Table 2 (slicing-helpful bugs)."""
    return [b for b in all_bugs() if b.slicing_helpful]


def excluded_bugs() -> list[InjectedBug]:
    """The xml-security-style bugs the paper excludes from Table 2."""
    return [b for b in all_bugs() if not b.slicing_helpful]


@dataclass
class TaskLines:
    """Marker names resolved against a concrete (buggy) source text."""

    seed: int
    desired: frozenset[int]
    control_seeds: frozenset[int] = field(default_factory=frozenset)

    def seed_lines(self) -> list[int]:
        return [self.seed, *sorted(self.control_seeds)]


def resolve_task(bug: InjectedBug, source: str) -> TaskLines:
    """Resolve the bug's markers to line numbers in ``source``.

    ``source`` must already contain the stdlib when control markers
    reference it (compile with ``include_stdlib=True`` and use
    ``compiled.source.text``).
    """
    markers = find_markers(source).get("tag", {})

    def line_of(name: str) -> int:
        if name not in markers:
            raise KeyError(f"{bug.bug_id}: marker {name!r} not found")
        return markers[name]

    return TaskLines(
        seed=line_of(bug.seed_marker),
        desired=frozenset(line_of(m) for m in bug.desired_markers),
        control_seeds=frozenset(line_of(m) for m in bug.control_markers),
    )
