"""Synthetic MJ program generation for scalability experiments.

The paper's §6.1 scalability story is about *growth*: how analysis and
slicing costs behave as programs get bigger.  The suite programs are
fixed-size, so this module manufactures well-typed MJ programs of
parameterizable size with the structural features that matter — layered
call chains, per-layer classes with fields, container traffic through
Vectors, and a value that flows through every layer (so slices have
real depth).

``generate_layered_program(layers, width)`` produces roughly
``layers * width`` classes and methods; the value printed at the end has
flowed through every layer, making the final print a deep seed.
"""

from __future__ import annotations


def generate_layered_program(layers: int, width: int = 3) -> str:
    """A program with ``layers`` tiers of ``width`` worker classes.

    Tier k's workers transform values produced by tier k-1, stash
    intermediate results in a shared Vector, and pass the value up.  The
    main method drives the chain and prints the result (tagged
    ``//@tag:sink``) plus a value read back out of the container
    (tagged ``//@tag:containersink``).
    """
    if layers < 1 or width < 1:
        raise ValueError("layers and width must be positive")
    parts: list[str] = []
    for layer in range(layers):
        for worker in range(width):
            parts.append(_worker_class(layer, worker, width))
    parts.append(_main_class(layers, width))
    return "\n".join(parts)


def _worker_class(layer: int, worker: int, width: int) -> str:
    name = f"W{layer}_{worker}"
    if layer == 0:
        body = "return seed + %d;" % worker
        call = ""
    else:
        # Each worker calls every worker of the previous layer and
        # combines their results, creating a dense call structure.
        calls = []
        for prev in range(width):
            calls.append(
                f"total = total + new W{layer - 1}_{prev}().step(seed, log);"
            )
        call = " ".join(calls)
        body = f"int total = 0; {call} return total + bias;"
    return f"""
class {name} {{
  int bias;

  {name}() {{
    bias = {layer * width + worker};
  }}

  int step(int seed, Vector log) {{
    log.add("{name}");
    {body}
  }}
}}
"""


def _main_class(layers: int, width: int) -> str:
    top_calls = " ".join(
        f"result = result + new W{layers - 1}_{w}().step(start, log);"
        for w in range(width)
    )
    return f"""
class Main {{
  static void main(String[] args) {{
    int start = args.length + 1;
    Vector log = new Vector();
    int result = 0;
    {top_calls}
    print(result);                         //@tag:sink
    print((String) log.get(0));            //@tag:containersink
    print("steps: " + log.size());
  }}
}}
"""


def expected_sizes(layers: int, width: int) -> tuple[int, int]:
    """(classes, methods) the generated program contains (plus Main)."""
    return layers * width + 1, layers * width * 2 + 1
