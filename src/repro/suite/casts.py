"""Tough-cast registry — the suite's analog of the SPECjvm98 casts (§6.3).

A *tough cast* is a downcast that a precise, scalable pointer analysis
cannot verify — typically safe only because of a global invariant such
as "constructors of AddNode always write op code 1".  Each task records:

* ``cast_marker`` — the downcast line (the seed);
* ``control_markers`` — the guarding conditionals the user follows
  first (§6.3 walks Figure 5 this way: follow a control dependence from
  the cast, then thin-slice the tag read);
* ``desired_markers`` — the statements that show the cast cannot fail
  (tag-field writes in constructors, or the single store site feeding a
  homogeneous container);
* ``n_control`` — control dependences charged to both techniques.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.source import find_markers


@dataclass(frozen=True)
class ToughCast:
    cast_id: str
    program: str
    cast_marker: str
    desired_markers: tuple[str, ...]
    control_markers: tuple[str, ...] = ()
    n_control: int = 0
    description: str = ""


CASTS: dict[str, ToughCast] = {}


def _cast(**kwargs) -> None:
    cast = ToughCast(**kwargs)
    CASTS[cast.cast_id] = cast


# --- raytrace (mtrt analog): dispatch casts guarded by kind tags -----------

_cast(
    cast_id="raytrace-1",
    program="raytrace",
    cast_marker="spherecast",
    desired_markers=("shapekind", "spherector"),
    control_markers=("kindtest",),
    n_control=1,
    description="Sphere downcast guarded by kind == 1",
)

_cast(
    cast_id="raytrace-2",
    program="raytrace",
    cast_marker="wallcast",
    desired_markers=("shapekind", "wallctor"),
    control_markers=("kindtest",),
    n_control=1,
    description="Wall downcast on the else branch of the kind test",
)

# --- rules (jess analog) ----------------------------------------------------

_cast(
    cast_id="rules-1",
    program="rules",
    cast_marker="eqcast",
    desired_markers=("condkind", "eqctor"),
    control_markers=("condread",),
    n_control=2,
    description="EqCondition downcast guarded by kind == 1",
)

_cast(
    cast_id="rules-2",
    program="rules",
    cast_marker="gtcast",
    desired_markers=("condkind", "gtctor"),
    control_markers=("condread",),
    n_control=2,
    description="GtCondition downcast guarded by kind == 2",
)

_cast(
    cast_id="rules-3",
    program="rules",
    cast_marker="hascast",
    desired_markers=("condkind", "hasctor"),
    control_markers=("condread",),
    n_control=2,
    description="HasFactCondition downcast on the default branch",
)

_cast(
    cast_id="rules-4",
    program="rules",
    cast_marker="assertcast",
    desired_markers=("actkind", "assertctor"),
    control_markers=("actread",),
    n_control=2,
    description="AssertAction downcast guarded by kind == 1",
)

_cast(
    cast_id="rules-5",
    program="rules",
    cast_marker="printcast",
    desired_markers=("actkind", "printctor"),
    control_markers=("actread",),
    n_control=2,
    description="PrintAction downcast on the default branch",
)

_cast(
    cast_id="rules-6",
    program="rules",
    cast_marker="factcast",
    desired_markers=("newfact",),
    description="facts Vector holds only Fact objects (single add site)",
)

# --- minijavac (javac analog): op-tagged AST nodes --------------------------

_cast(
    cast_id="minijavac-1",
    program="minijavac",
    cast_marker="evalconstcast",
    desired_markers=("opwrite", "constctor"),
    control_markers=("evalopread",),
    n_control=1,
    description="evaluator ConstNode cast, Figure 5 shape",
)

_cast(
    cast_id="minijavac-2",
    program="minijavac",
    cast_marker="evaladdcast",
    desired_markers=("opwrite", "addctor"),
    control_markers=("evalopread",),
    n_control=1,
    description="evaluator AddNode cast",
)

_cast(
    cast_id="minijavac-3",
    program="minijavac",
    cast_marker="genconstcast",
    desired_markers=("opwrite", "constctor"),
    control_markers=("genopread",),
    n_control=1,
    description="code generator ConstNode cast",
)

_cast(
    cast_id="minijavac-4",
    program="minijavac",
    cast_marker="foldaddcast",
    desired_markers=("opwrite", "addctor"),
    control_markers=("foldopread",),
    n_control=1,
    description="constant folder AddNode cast",
)

# --- parsegen (jack analog): container-mediated casts -----------------------

_cast(
    cast_id="parsegen-1",
    program="parsegen",
    cast_marker="bodycast",
    desired_markers=("addsym",),
    description="production bodies hold only Symbols",
)

_cast(
    cast_id="parsegen-2",
    program="parsegen",
    cast_marker="termcast",
    desired_markers=("newterm", "putterm"),
    description="terminal cache stores only Terminals under these keys",
)

_cast(
    cast_id="parsegen-3",
    program="parsegen",
    cast_marker="nontermcast",
    desired_markers=("newnonterm", "putnonterm"),
    description="nonterminal cache stores only NonTerminals",
)

_cast(
    cast_id="parsegen-4",
    program="parsegen",
    cast_marker="lookupcast",
    desired_markers=("putterm", "putnonterm"),
    description="symbol table stores only Symbols",
)

_cast(
    cast_id="parsegen-5",
    program="parsegen",
    cast_marker="rulecast",
    desired_markers=("splitsub",),
    description="split() vectors hold only Strings",
)

_cast(
    cast_id="parsegen-6",
    program="parsegen",
    cast_marker="wordcast",
    desired_markers=("splitsub",),
    description="split() vectors hold only Strings (word loop)",
)

_cast(
    cast_id="parsegen-7",
    program="parsegen",
    cast_marker="ownersetcast",
    desired_markers=("putfirst",),
    description="FIRST map stores only Vectors",
)

_cast(
    cast_id="parsegen-8",
    program="parsegen",
    cast_marker="symsetcast",
    desired_markers=("putfirst",),
    description="FIRST map stores only Vectors (body walk)",
)

_cast(
    cast_id="parsegen-9",
    program="parsegen",
    cast_marker="nullcast",
    desired_markers=("symkind", "nontermctor"),
    control_markers=("nullkindtest",),
    n_control=1,
    description="NonTerminal cast after the kind == 1 break",
)

_cast(
    cast_id="parsegen-10",
    program="parsegen",
    cast_marker="termnamecast",
    desired_markers=("termfirst", "firstadd"),
    description="FIRST sets hold only terminal-name Strings",
)


def all_casts() -> list[ToughCast]:
    return [CASTS[k] for k in sorted(CASTS)]


def casts_for_program(program: str) -> list[ToughCast]:
    return [c for c in all_casts() if c.program == program]


def resolve_cast_lines(
    cast: ToughCast, source: str
) -> tuple[int, frozenset[int], frozenset[int]]:
    """(cast line, desired lines, control seed lines) in ``source``."""
    markers = find_markers(source).get("tag", {})

    def line_of(name: str) -> int:
        if name not in markers:
            raise KeyError(f"{cast.cast_id}: marker {name!r} not found")
        return markers[name]

    return (
        line_of(cast.cast_marker),
        frozenset(line_of(m) for m in cast.desired_markers),
        frozenset(line_of(m) for m in cast.control_markers),
    )
