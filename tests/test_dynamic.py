"""Dynamic thin slicing tests (the §7 extension).

The tracing interpreter must (a) agree with the reference interpreter on
behaviour, and (b) produce dynamic slices with the same producer/
explainer split the static slicers exhibit — but exact, since dynamic
heap dependences need no points-to approximation.
"""

from __future__ import annotations

import pytest

from repro.dynamic import (
    dynamic_thin_slice,
    failure_seeds,
    trace_and_slice,
    trace_program,
)
from repro.frontend import compile_source
from repro.interp.interpreter import run_program
from repro.lang.source import marker_line
from repro.suite.bugs import BUGS
from repro.suite.loader import load_source


def trace(source: str, args=None, stdlib=False):
    compiled = compile_source(source, include_stdlib=stdlib)
    return trace_program(compiled.ast, compiled.table, args)


class TestTracerMatchesInterpreter:
    CASES = [
        ("figure1", ["John Doe", "Jane Roe"]),
        ("figure5", []),
        ("rules", []),
        ("raytrace", []),
        ("jtopas", ['foo 12 "x y" +']),
        ("minixml", ["<a id='42'><b>hi</b></a>"]),
        ("xmlsec", ["Hello XML  Security", "7301"]),
        ("minijavac", ["x = 1 + 2 * 3; y = x - 4"]),
        ("minibuild", ["prop n v; target all = echo ${n}"]),
        ("parsegen", ["S -> a B | c ; B -> b | _"]),
    ]

    @pytest.mark.parametrize("name,args", CASES, ids=[c[0] for c in CASES])
    def test_same_output_as_reference_interpreter(self, name, args):
        source = load_source(name)
        compiled = compile_source(source, name, include_stdlib=True)
        reference = run_program(compiled.ast, compiled.table, args)
        traced = trace_program(compiled.ast, compiled.table, args)
        assert traced.output == reference.output
        assert traced.error_class == reference.error_class

    def test_exception_behaviour_matches(self):
        source = load_source("figure4")
        compiled = compile_source(source, "figure4", include_stdlib=True)
        reference = run_program(compiled.ast, compiled.table, [])
        traced = trace_program(compiled.ast, compiled.table, [])
        assert traced.error_class == reference.error_class == "ClosedException"

    def test_event_budget(self):
        source = (
            "class Main { static void main(String[] args) {"
            " int s = 0; for (int i = 0; i < 100000; i++) { s += i; }"
            " print(s); } }"
        )
        compiled = compile_source(source)
        traced = trace_program(
            compiled.ast, compiled.table, [], max_events=1000
        )
        assert traced.timed_out


class TestDynamicSlices:
    def test_figure1_dynamic_thin_slice(self):
        source = load_source("figure1")
        run = trace_and_slice(source, ["John Doe"], seed_output_index=0)
        tags = {
            n: marker_line(source, "tag", n)
            for n in ("read", "indexOf", "buggy", "add", "get", "seed",
                      "setNames", "getNames")
        }
        for name in ("read", "indexOf", "buggy", "add", "get", "seed"):
            assert tags[name] in run.thin.lines, name
        # Explainers (pointer plumbing) excluded from the thin slice...
        assert tags["setNames"] not in run.thin.lines
        # ...and the traditional slice is a superset.
        assert run.thin.lines <= run.traditional.lines
        assert len(run.traditional.lines) > len(run.thin.lines)

    def test_dynamic_slice_from_throw_is_small(self):
        # §4.2: "no value flows into the throw statement, [so] a thin
        # slice from the throw statement will not aid debugging" — the
        # dynamic thin slice only chases the exception's payload (the
        # file name), never the close() that caused the state.
        source = load_source("figure4")
        run = trace_and_slice(source, [])
        assert run.trace.error_class == "ClosedException"
        assert len(run.thin.lines) <= 8
        close = marker_line(source, "tag", "close")
        assert close not in run.thin.lines
        assert close in run.traditional.lines

    def test_dynamic_traditional_from_throw_reaches_cause(self):
        source = load_source("figure4")
        run = trace_and_slice(source, [])
        close = marker_line(source, "tag", "close")
        assert close in run.traditional.lines

    def test_dynamic_slice_is_execution_specific(self):
        # A branch not taken leaves no events: the dynamic slice of the
        # printed value ignores the unexecuted assignment.
        source = """
        class Main {
          static void main(String[] args) {
            int x = 1;                          //@tag:one
            if (args.length > 5) { x = 2; }     //@tag:two
            print(x);                           //@tag:out
          }
        }
        """
        run = trace_and_slice(source, [], include_stdlib=False)
        assert marker_line(source, "tag", "one") in run.thin.lines
        assert marker_line(source, "tag", "two") not in run.thin.lines

    def test_dynamic_heap_dependence_is_exact(self):
        # Two boxes, aliased stores would confuse a context-insensitive
        # static slicer without cloning; the trace is exact by nature.
        source = """
        class Box { int v; }
        class Main {
          static void main(String[] args) {
            Box a = new Box();
            Box b = new Box();
            a.v = 10;                           //@tag:storeA
            b.v = 20;                           //@tag:storeB
            print(a.v);                         //@tag:out
          }
        }
        """
        run = trace_and_slice(source, [], include_stdlib=False)
        assert marker_line(source, "tag", "storeA") in run.thin.lines
        assert marker_line(source, "tag", "storeB") not in run.thin.lines

    def test_dynamic_thin_subset_of_traditional_everywhere(self):
        for name, args in (
            ("figure1", ["John Doe"]),
            ("rules", []),
            ("minijavac", ["x = 2 * 3 + 1"]),
        ):
            run = trace_and_slice(load_source(name), args)
            assert run.thin.lines <= run.traditional.lines, name

    def test_catch_links_to_throw(self):
        source = """
        class E { String m; E(String m) { this.m = m; } }
        class Main {
          static void main(String[] args) {
            try {
              throw new E("boom");              //@tag:throw
            } catch (E e) {
              print(e.m);                       //@tag:out
            }
          }
        }
        """
        run = trace_and_slice(source, [], include_stdlib=False,
                              seed_output_index=0)
        assert marker_line(source, "tag", "throw") in run.thin.lines

    def test_failure_seeds_prefers_error(self):
        source = load_source("figure4")
        compiled = compile_source(source, include_stdlib=True)
        traced = trace_program(compiled.ast, compiled.table, [])
        seeds = failure_seeds(traced)
        assert seeds[0] is traced.error_event
        # ...plus the producing events of the values the exception carries.
        assert set(seeds[1:]) == set(traced.error_field_events)

    def test_failure_seeds_falls_back_to_last_output(self):
        traced = trace(
            'class Main { static void main(String[] args) { print("a"); '
            'print("b"); } }'
        )
        seeds = failure_seeds(traced)
        assert seeds == [traced.output_events[-1]]


class TestDynamicVsStatic:
    def test_dynamic_thin_no_larger_than_static_thin(self):
        """On the executed path, dynamic dependences are a subset of the
        static may-dependences, so the dynamic thin slice (lines) is no
        larger than the static thin slice from the same seed line."""
        from repro.analysis.pointsto import solve_points_to
        from repro.sdg.sdg import build_sdg
        from repro.slicing.thin import ThinSlicer

        source = load_source("figure1")
        compiled = compile_source(source, "figure1.mj", include_stdlib=True)
        pts = solve_points_to(compiled.ir)
        sdg = build_sdg(compiled, pts)
        seed = marker_line(source, "tag", "seed")
        static_lines = ThinSlicer(compiled, sdg).slice_from_line(seed).lines

        run = trace_and_slice(source, ["John Doe"], seed_output_index=0)
        assert run.thin.lines <= static_lines | {seed}

    def test_injected_bug_found_dynamically(self):
        """The dynamic thin slice from the wrong output contains the
        injected statement — the Zhang et al. observation the paper
        cites (dynamic data dependences alone often find the bug)."""
        bug = BUGS["minixml-2"]
        buggy = bug.apply()
        compiled = compile_source(buggy, bug.bug_id, include_stdlib=True)
        traced = trace_program(compiled.ast, compiled.table, list(bug.args))
        # Find the wrong "id: 4" output event.
        index = next(
            i for i, line in enumerate(traced.output) if line.startswith("id:")
        )
        slice_ = dynamic_thin_slice([traced.output_events[index]])
        buggy_line = marker_line(compiled.source.text, "tag", bug.marker)
        assert buggy_line in slice_.lines
