"""Direct unit tests for the native String method implementations."""

from __future__ import annotations

import pytest

from repro.interp.natives import NativeFault, call_native


def call(name, receiver, *args):
    return call_native(name, receiver, list(args))


class TestAccessors:
    def test_length(self):
        assert call("length", "") == 0
        assert call("length", "abc") == 3

    def test_char_at(self):
        assert call("charAt", "abc", 1) == "b"

    def test_char_at_out_of_range(self):
        with pytest.raises(NativeFault) as info:
            call("charAt", "abc", 3)
        assert info.value.exc_class == "StringIndexOutOfBoundsException"

    def test_char_at_negative(self):
        with pytest.raises(NativeFault):
            call("charAt", "abc", -1)

    def test_is_empty(self):
        assert call("isEmpty", "") is True
        assert call("isEmpty", "x") is False


class TestSubstring:
    def test_two_arg(self):
        assert call("substring", "hello", 1, 3) == "el"

    def test_one_arg(self):
        assert call("substring", "hello", 2) == "llo"

    def test_empty_range(self):
        assert call("substring", "hello", 2, 2) == ""

    def test_begin_after_end(self):
        with pytest.raises(NativeFault):
            call("substring", "hello", 3, 2)

    def test_end_past_length(self):
        with pytest.raises(NativeFault):
            call("substring", "hi", 0, 3)

    def test_negative_begin(self):
        with pytest.raises(NativeFault):
            call("substring", "hi", -1, 1)


class TestSearch:
    def test_index_of(self):
        assert call("indexOf", "banana", "an") == 1
        assert call("indexOf", "banana", "z") == -1

    def test_index_of_from(self):
        assert call("indexOf", "banana", "an", 2) == 3

    def test_index_of_negative_start_clamped(self):
        assert call("indexOf", "banana", "b", -5) == 0

    def test_last_index_of(self):
        assert call("lastIndexOf", "banana", "an") == 3

    def test_contains(self):
        assert call("contains", "banana", "nan") is True
        assert call("contains", "banana", "xyz") is False

    def test_starts_ends_with(self):
        assert call("startsWith", "hello", "he") is True
        assert call("endsWith", "hello", "lo") is True
        assert call("startsWith", "hello", "lo") is False


class TestTransforms:
    def test_trim(self):
        assert call("trim", "  x  ") == "x"

    def test_case(self):
        assert call("toUpperCase", "aBc") == "ABC"
        assert call("toLowerCase", "aBc") == "abc"

    def test_concat(self):
        assert call("concat", "ab", "cd") == "abcd"

    def test_replace(self):
        assert call("replace", "a-b-c", "-", "+") == "a+b+c"


class TestComparison:
    def test_equals(self):
        assert call("equals", "x", "x") is True
        assert call("equals", "x", "y") is False
        assert call("equals", "x", None) is False

    def test_compare_to(self):
        assert call("compareTo", "a", "b") == -1
        assert call("compareTo", "b", "a") == 1
        assert call("compareTo", "a", "a") == 0

    def test_hash_code_matches_java(self):
        # Java: "hello".hashCode() == 99162322
        assert call("hashCode", "hello") == 99162322

    def test_hash_code_is_signed_32bit(self):
        # A string whose Java hash is negative.
        value = call("hashCode", "polygenelubricants")
        assert value == -2147483648

    def test_unknown_native(self):
        with pytest.raises(NativeFault):
            call("frobnicate", "x")
