"""Type checker tests: typing rules, name resolution, error reporting."""

from __future__ import annotations

import pytest

from repro.lang.errors import TypeError_
from repro.lang.parser import parse_program
from repro.lang.symbols import ClassTable
from repro.lang.typechecker import TypeChecker, check_program
from repro.lang.types import ClassType, INT, STRING


def check_ok(source: str) -> ClassTable:
    return check_program(parse_program(source))


def check_errors(source: str) -> list[str]:
    program = parse_program(source)
    table = ClassTable(program)
    checker = TypeChecker(table)
    return [e.message for e in checker.check()]


def assert_error(source: str, fragment: str) -> None:
    errors = check_errors(source)
    assert any(fragment in e for e in errors), f"{fragment!r} not in {errors}"


class TestClassTable:
    def test_builtins_present(self):
        table = check_ok("class A {}")
        assert table.has_class("Object")
        assert table.has_class("String")

    def test_duplicate_class(self):
        with pytest.raises(TypeError_, match="duplicate class"):
            check_ok("class A {} class A {}")

    def test_unknown_superclass(self):
        with pytest.raises(TypeError_, match="unknown class"):
            check_ok("class A extends Nope {}")

    def test_inheritance_cycle(self):
        with pytest.raises(TypeError_, match="cycle"):
            check_ok("class A extends B {} class B extends A {}")

    def test_duplicate_field(self):
        with pytest.raises(TypeError_, match="duplicate field"):
            check_ok("class A { int x; int x; }")

    def test_duplicate_method(self):
        with pytest.raises(TypeError_, match="duplicate method"):
            check_ok("class A { void m() {} void m() {} }")

    def test_multiple_constructors_rejected(self):
        with pytest.raises(TypeError_, match="multiple constructors"):
            check_ok("class A { A() {} A(int x) {} }")

    def test_inherited_field_lookup(self):
        table = check_ok("class A { int x; } class B extends A {}")
        found = table.lookup_field("B", "x")
        assert found is not None and found[0] == "A"

    def test_virtual_dispatch_resolution(self):
        table = check_ok(
            "class A { int m() { return 1; } }"
            "class B extends A { int m() { return 2; } }"
        )
        assert table.resolve_virtual("B", "m")[0] == "B"
        assert table.resolve_virtual("A", "m")[0] == "A"

    def test_subclass_assignability(self):
        table = check_ok("class A {} class B extends A {}")
        assert table.is_assignable(ClassType("B"), ClassType("A"))
        assert not table.is_assignable(ClassType("A"), ClassType("B"))

    def test_null_assignable_to_references_only(self):
        from repro.lang.types import NULL

        table = check_ok("class A {}")
        assert table.is_assignable(NULL, ClassType("A"))
        assert table.is_assignable(NULL, STRING)
        assert not table.is_assignable(NULL, INT)


class TestExpressionTyping:
    def test_arithmetic_types(self):
        check_ok("class A { int m() { return 1 + 2 * 3 % 4; } }")

    def test_string_concat(self):
        check_ok('class A { String m(int x) { return "v=" + x; } }')

    def test_cannot_add_booleans(self):
        assert_error("class A { void m() { int x = true + false; } }", "cannot add")

    def test_comparison_yields_boolean(self):
        check_ok("class A { boolean m() { return 1 < 2; } }")

    def test_comparison_requires_ints(self):
        assert_error('class A { void m() { boolean b = "a" < "b"; } }', "requires ints")

    def test_equality_on_references(self):
        check_ok("class A { boolean m(A x, A y) { return x == y; } }")

    def test_equality_int_vs_boolean_rejected(self):
        assert_error("class A { void m() { boolean b = 1 == true; } }", "compare")

    def test_logical_ops_require_booleans(self):
        assert_error("class A { void m() { boolean b = 1 && 2; } }", "requires booleans")

    def test_not_requires_boolean(self):
        assert_error("class A { void m() { boolean b = !3; } }", "requires a boolean")

    def test_condition_must_be_boolean(self):
        assert_error("class A { void m() { if (1) { } } }", "must be boolean")

    def test_array_index_must_be_int(self):
        assert_error(
            "class A { void m(int[] a) { int x = a[true]; } }", "index must be int"
        )

    def test_array_length(self):
        check_ok("class A { int m(String[] a) { return a.length; } }")

    def test_array_length_not_assignable(self):
        assert_error(
            "class A { void m(int[] a) { a.length = 3; } }", "read-only"
        )

    def test_cast_between_related_classes(self):
        check_ok(
            "class A {} class B extends A {}"
            "class C { B m(A a) { return (B) a; } }"
        )

    def test_cast_between_unrelated_classes_rejected(self):
        assert_error(
            "class A {} class B {} class C { void m(A a) { B b = (B) a; } }",
            "cannot cast",
        )

    def test_instanceof(self):
        check_ok("class A { boolean m(Object o) { return o instanceof A; } }")

    def test_instanceof_on_int_rejected(self):
        assert_error(
            "class A { void m() { boolean b = 3 instanceof A; } }",
            "reference",
        )

    def test_postfix_requires_int(self):
        assert_error("class A { void m(boolean b) { b++; } }", "int target")


class TestNameResolution:
    def test_local_shadows_nothing_twice(self):
        assert_error("class A { void m() { int x; int x; } }", "already defined")

    def test_block_scoping_allows_redeclare_after_block(self):
        check_ok("class A { void m() { { int x; } int x; } }")

    def test_param_resolution(self):
        program = parse_program("class A { int m(int p) { return p; } }")
        check_program(program)
        ret = program.classes[0].methods[0].body.statements[0]
        assert ret.value.resolution == ("local", "p")

    def test_implicit_field_resolution(self):
        program = parse_program("class A { int f; int m() { return f; } }")
        check_program(program)
        ret = program.classes[0].methods[0].body.statements[0]
        assert ret.value.resolution == ("field", "A")

    def test_static_field_via_class_name(self):
        program = parse_program(
            "class A { static int F; } class B { int m() { return A.F; } }"
        )
        check_program(program)

    def test_instance_field_in_static_context_rejected(self):
        assert_error(
            "class A { int f; static int m() { return f; } }",
            "static context",
        )

    def test_this_in_static_method_rejected(self):
        assert_error("class A { static Object m() { return this; } }", "static")

    def test_unknown_name(self):
        assert_error("class A { void m() { int x = nope; } }", "unknown name")

    def test_unknown_method(self):
        assert_error("class A { void m() { nope(); } }", "unknown")

    def test_unknown_field(self):
        assert_error("class A { void m(A a) { int x = a.nope; } }", "no field")


class TestCalls:
    def test_virtual_call_resolution(self):
        program = parse_program(
            "class A { int f() { return 1; } int m(A a) { return a.f(); } }"
        )
        check_program(program)
        ret = program.classes[0].methods[1].body.statements[0]
        assert ret.value.resolution == ("virtual", "A")

    def test_static_call_via_class(self):
        check_ok(
            "class A { static int f() { return 1; } }"
            "class B { int m() { return A.f(); } }"
        )

    def test_static_call_via_instance_rejected(self):
        assert_error(
            "class A { static int f() { return 1; } void m(A a) { int x = a.f(); } }",
            "must be called via the class name",
        )

    def test_arity_mismatch(self):
        assert_error(
            "class A { int f(int x) { return x; } int m() { return f(); } }",
            "expects 1 arguments",
        )

    def test_argument_type_mismatch(self):
        assert_error(
            "class A { int f(int x) { return x; } int m() { return f(true); } }",
            "expected int",
        )

    def test_string_native_call(self):
        program = parse_program('class A { int m(String s) { return s.length(); } }')
        check_program(program)
        ret = program.classes[0].methods[0].body.statements[0]
        assert ret.value.resolution == ("native", "String")

    def test_native_overloaded_arity(self):
        check_ok(
            'class A { String m(String s) { return s.substring(1, 2) + s.substring(1); } }'
        )

    def test_unknown_native(self):
        assert_error(
            'class A { void m(String s) { s.frobnicate(); } }', "no String method"
        )

    def test_print_builtin(self):
        check_ok('class A { void m() { print("x"); print(1); print(true); } }')

    def test_print_arity(self):
        assert_error("class A { void m() { print(1, 2); } }", "exactly one")

    def test_instance_call_from_static_rejected(self):
        assert_error(
            "class A { int f() { return 1; } static int m() { return f(); } }",
            "static context",
        )


class TestConstructors:
    def test_new_with_ctor_args(self):
        check_ok("class A { A(int x) {} } class B { A m() { return new A(1); } }")

    def test_new_arity_mismatch(self):
        assert_error(
            "class A { A(int x) {} } class B { void m() { A a = new A(); } }",
            "constructor expects",
        )

    def test_new_without_ctor(self):
        check_ok("class A {} class B { A m() { return new A(); } }")

    def test_cannot_instantiate_builtins(self):
        assert_error("class B { void m() { Object o = new Object(); } }", "builtin")

    def test_super_call_checked(self):
        check_ok(
            "class A { A(int x) {} } class B extends A { B() { super(1); } }"
        )

    def test_super_call_arity(self):
        assert_error(
            "class A { A(int x) {} } class B extends A { B() { super(); } }",
            "expects 1",
        )

    def test_super_outside_ctor_rejected(self):
        assert_error(
            "class A {} class B extends A { void m() { super(); } }",
            "only legal inside a constructor",
        )


class TestOverridesAndReturns:
    def test_override_same_signature_ok(self):
        check_ok(
            "class A { int m(int x) { return x; } }"
            "class B extends A { int m(int y) { return y + 1; } }"
        )

    def test_override_wrong_return_type(self):
        assert_error(
            "class A { int m() { return 1; } }"
            "class B extends A { boolean m() { return true; } }",
            "does not match",
        )

    def test_override_wrong_params(self):
        assert_error(
            "class A { int m() { return 1; } }"
            "class B extends A { int m(int x) { return x; } }",
            "does not match",
        )

    def test_missing_return_detected(self):
        assert_error(
            "class A { int m(boolean b) { if (b) { return 1; } } }",
            "without returning",
        )

    def test_return_via_both_branches_ok(self):
        check_ok(
            "class A { int m(boolean b) { if (b) { return 1; } else { return 2; } } }"
        )

    def test_return_via_throw_ok(self):
        check_ok(
            "class E { E() {} }"
            "class A { int m(boolean b) { if (b) { return 1; } throw new E(); } }"
        )

    def test_infinite_loop_counts_as_returning(self):
        check_ok("class A { int m() { while (true) { int x = 1; } } }")

    def test_loop_with_break_does_not_count(self):
        assert_error(
            "class A { int m() { while (true) { break; } } }",
            "without returning",
        )

    def test_void_return_with_value_rejected(self):
        assert_error("class A { void m() { return 1; } }", "void method")

    def test_missing_return_value_rejected(self):
        assert_error("class A { int m() { return; } }", "missing return value")

    def test_break_outside_loop(self):
        assert_error("class A { void m() { break; } }", "outside")

    def test_all_errors_collected(self):
        errors = check_errors(
            "class A { void m() { int x = nope1; int y = nope2; } }"
        )
        assert len(errors) == 2
