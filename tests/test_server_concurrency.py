"""Concurrency hammer: many clients, one daemon, no lost responses.

Eight threads each open their own TCP connection and fire a mixed
workload — warm slices, cold slices (unique sources), malformed
requests, and requests with hopeless deadlines.  Every request must get
exactly its own response (the client verifies id matching on every
reply), and afterwards the daemon's counters must account for every
request exactly once.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.lang.source import marker_line
from repro.server.cache import AnalysisCache
from repro.server.client import ServerError, SliceClient
from repro.server.daemon import SliceServer, start_tcp_server
from tests.conftest import make_server
from repro.suite.loader import load_source

SOURCE = load_source("figure2")
SEED_LINE = marker_line(SOURCE, "tag", "seed")

THREADS = 8
ROUNDS = 3
#: Requests per thread per round: warm slice, bad params, cold slice
#: with an impossible deadline (times out), warm slice again.
REQUESTS_PER_ROUND = 4


@pytest.fixture(scope="module")
def daemon():
    server = make_server(AnalysisCache(capacity=4), workers=4, max_queue=64)
    tcp_server, _thread = start_tcp_server(server)
    host, port = tcp_server.server_address[:2]
    yield server, host, port
    tcp_server.shutdown()
    tcp_server.server_close()
    server.close()


def hammer(host: str, port: int, worker_id: int, failures: list):
    try:
        with SliceClient.connect(host, port, retries=3) as client:
            for round_no in range(ROUNDS):
                # Warm query: everyone shares one cached analysis.
                result = client.slice_program("figure2", SEED_LINE)
                if result["line_count"] <= 0:
                    raise AssertionError("empty slice from warm query")

                # Malformed request: must be a structured error, and
                # must not poison the connection for what follows.
                try:
                    client.request("slice", program="figure2", line="x")
                    raise AssertionError("BadParams did not raise")
                except ServerError as exc:
                    if exc.error_type != "BadParams":
                        raise

                # Cold analysis (unique source per thread+round) with a
                # hopeless deadline: a structured Timeout, not a hang.
                unique = f"{SOURCE}// w{worker_id} r{round_no}\n"
                try:
                    client.slice(
                        unique, SEED_LINE, deadline=0.001, retries=0
                    )
                except ServerError as exc:
                    if exc.error_type not in (
                        "Timeout",
                        "Cancelled",
                        "DeadlineExpired",
                    ):
                        raise
                else:
                    # A fast machine may finish inside the deadline —
                    # success is acceptable, losing the response is not.
                    pass

                # The connection still works after error traffic.
                result = client.slice_program("figure2", SEED_LINE)
                if result["line_count"] <= 0:
                    raise AssertionError("empty slice after error traffic")
    except Exception as exc:  # noqa: BLE001 — collected for the main thread
        failures.append((worker_id, repr(exc)))


def test_hammer_no_lost_responses(daemon):
    server, host, port = daemon
    failures: list = []
    threads = [
        threading.Thread(
            target=hammer, args=(host, port, i, failures), daemon=True
        )
        for i in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive(), "hammer thread hung"
    assert not failures, f"worker failures: {failures}"

    stats = server.server_stats()
    expected = THREADS * ROUNDS * REQUESTS_PER_ROUND
    assert stats["requests_total"] == expected
    assert stats["methods"]["slice"]["count"] == expected
    # Every malformed request is an error; every deadline miss a timeout.
    assert stats["methods"]["slice"]["errors"] >= THREADS * ROUNDS
    # Cancelled workers from timed-out requests unwind cooperatively;
    # give them a beat, then nothing may remain in flight.
    deadline = time.monotonic() + 2.0
    while time.monotonic() < deadline:
        stats = server.server_stats()
        if not stats["service"]["busy"] and not stats["service"]["queued"]:
            break
        time.sleep(0.02)
    assert stats["service"]["busy"] == 0
    assert stats["service"]["queued"] == 0


def test_health_under_load(daemon):
    """health answers promptly even while slices are running."""
    _server, host, port = daemon
    stop = threading.Event()

    def churn():
        with SliceClient.connect(host, port) as client:
            while not stop.is_set():
                client.slice_program("figure2", SEED_LINE)

    thread = threading.Thread(target=churn, daemon=True)
    thread.start()
    try:
        with SliceClient.connect(host, port) as client:
            for _ in range(20):
                health = client.health()
                assert health["healthy"] is True
                assert 0 <= health["busy"] <= health["workers"]
    finally:
        stop.set()
        thread.join(timeout=10)
    assert not thread.is_alive()
