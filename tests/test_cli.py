"""CLI tests (python -m repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestRun:
    def test_run_suite_program(self, capsys):
        code, out, err = run_cli(capsys, "run", "figure5")
        assert code == 0
        assert out.splitlines() == ["5", "20", "7"]

    def test_run_with_args(self, capsys):
        code, out, err = run_cli(capsys, "run", "figure1", "John Doe")
        assert code == 0
        assert "FIRST NAME: Joh" in out

    def test_run_reports_uncaught_exception(self, capsys):
        code, out, err = run_cli(capsys, "run", "figure4")
        assert code == 1
        assert "ClosedException" in err

    def test_run_file_from_disk(self, capsys, tmp_path):
        path = tmp_path / "hello.mj"
        path.write_text(
            'class Main { static void main(String[] args) { print("hey"); } }'
        )
        code, out, err = run_cli(capsys, "run", str(path))
        assert code == 0
        assert out.strip() == "hey"

    def test_unknown_program_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "nope-nope"])

    def test_directory_path_friendly_error(self, tmp_path):
        with pytest.raises(SystemExit) as err:
            main(["stats", str(tmp_path)])
        assert "cannot read" in str(err.value)

    def test_unreadable_file_friendly_error(self, tmp_path):
        import os

        if os.geteuid() == 0:
            pytest.skip("root ignores file permissions")
        path = tmp_path / "secret.mj"
        path.write_text("class Main {}")
        path.chmod(0)
        with pytest.raises(SystemExit) as err:
            main(["stats", str(path)])
        assert "cannot read" in str(err.value)


class TestSlice:
    def seed_line(self, name: str, tag: str) -> int:
        from repro.lang.source import marker_line
        from repro.suite.loader import load_source

        return marker_line(load_source(name), "tag", tag)

    def test_thin_slice_output(self, capsys):
        line = self.seed_line("figure2", "seed")
        code, out, err = run_cli(capsys, "slice", "figure2", "--line", str(line))
        assert code == 0
        assert "thin slice" in out
        assert "new B()" in out
        assert "new A()" not in out  # explainer excluded

    def test_traditional_slice_output(self, capsys):
        line = self.seed_line("figure2", "seed")
        code, out, err = run_cli(
            capsys, "slice", "figure2", "--line", str(line), "--traditional"
        )
        assert code == 0
        assert "traditional slice" in out
        assert "new A()" in out

    def test_slice_on_empty_line_fails(self, capsys):
        code, out, err = run_cli(capsys, "slice", "figure2", "--line", "1")
        assert code == 1
        assert "no statements" in err

    def test_slice_json_output(self, capsys):
        import json

        line = self.seed_line("figure2", "seed")
        code, out, err = run_cli(
            capsys, "slice", "figure2", "--line", str(line), "--format", "json"
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["flavor"] == "thin"
        assert payload["seed_line"] == line
        assert payload["line_count"] == len(payload["lines"]) > 0
        assert "new B()" in payload["source_view"]

    def test_slice_json_empty_line_exits_nonzero(self, capsys):
        import json

        code, out, err = run_cli(
            capsys, "slice", "figure2", "--line", "1", "--format", "json"
        )
        assert code == 1
        assert json.loads(out)["seed_count"] == 0


class TestWhyChopDot:
    def lines(self, name, *tag_names):
        from repro.lang.source import marker_line
        from repro.suite.loader import load_source

        source = load_source(name)
        return [marker_line(source, "tag", t) for t in tag_names]

    def test_why_shows_value_path(self, capsys):
        buggy, seed = self.lines("figure1", "buggy", "seed")
        code, out, err = run_cli(
            capsys, "why", "figure1", "--source", str(buggy), "--sink", str(seed)
        )
        assert code == 0
        assert "value flow" in out
        assert "substring" in out
        assert "elems" in out  # the path goes through the Vector

    def test_why_reports_unreachable(self, capsys):
        seed, buggy = self.lines("figure1", "seed", "buggy")
        code, out, err = run_cli(
            capsys, "why", "figure1", "--source", str(seed), "--sink", str(buggy)
        )
        assert code == 1
        assert "no producer-flow path" in err

    def test_chop_lists_corridor(self, capsys):
        buggy, seed = self.lines("figure1", "buggy", "seed")
        code, out, err = run_cli(
            capsys, "chop", "figure1", "--source", str(buggy), "--sink", str(seed)
        )
        assert code == 0
        assert "thin chop" in out
        assert "substring" in out

    def test_chop_empty(self, capsys):
        seed, buggy = self.lines("figure1", "seed", "buggy")
        code, out, err = run_cli(
            capsys, "chop", "figure1", "--source", str(seed), "--sink", str(buggy)
        )
        assert code == 1
        assert "empty chop" in err

    def test_dot_full_graph(self, capsys):
        code, out, err = run_cli(capsys, "dot", "figure2", "--no-stdlib")
        assert code == 0
        assert out.startswith("digraph sdg {")

    def test_dot_slice_to_file(self, capsys, tmp_path):
        from repro.lang.source import marker_line
        from repro.suite.loader import load_source

        seed = marker_line(load_source("figure2"), "tag", "seed")
        target = tmp_path / "slice.dot"
        code, out, err = run_cli(
            capsys, "dot", "figure2", "--no-stdlib", "--line", str(seed),
            "-o", str(target),
        )
        assert code == 0
        assert target.exists()
        assert "digraph" in target.read_text()


class TestExplainAndStats:
    def test_explain_shows_conditional(self, capsys):
        from repro.lang.source import marker_line
        from repro.suite.loader import load_source

        source = load_source("figure4")
        line = marker_line(source, "tag", "throw")
        code, out, err = run_cli(capsys, "explain", "figure4", "--line", str(line))
        assert code == 0
        assert "!open" in out

    def test_stats_reports_counts(self, capsys):
        code, out, err = run_cli(capsys, "stats", "figure2", "--no-stdlib")
        assert code == 0
        assert "call graph nodes" in out
        assert "SDG statements" in out

    def test_stats_json_output(self, capsys):
        import json

        code, out, err = run_cli(
            capsys, "stats", "figure2", "--no-stdlib", "--format", "json"
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["program"] == "figure2.mj"
        assert payload["sdg_statements"] > 0
        assert payload["call_graph_edges"] >= payload["reachable_functions"] - 1


class TestServerRouting:
    @pytest.fixture()
    def address(self):
        from repro.server.cache import AnalysisCache
        from repro.server.daemon import SliceServer, start_tcp_server

        instance = SliceServer(AnalysisCache())
        tcp_server, _thread = start_tcp_server(instance)
        host, port = tcp_server.server_address[:2]
        yield f"{host}:{port}"
        tcp_server.shutdown()
        tcp_server.server_close()
        instance.close()

    def test_slice_via_server_matches_local(self, capsys, address):
        from repro.lang.source import marker_line
        from repro.suite.loader import load_source

        line = marker_line(load_source("figure2"), "tag", "seed")
        code, local_out, _ = run_cli(
            capsys, "slice", "figure2", "--line", str(line)
        )
        assert code == 0
        code, remote_out, _ = run_cli(
            capsys, "slice", "figure2", "--line", str(line),
            "--server", address,
        )
        assert code == 0
        assert remote_out == local_out

    def test_stats_via_server_json(self, capsys, address):
        import json

        code, out, err = run_cli(
            capsys, "stats", "figure2", "--server", address,
            "--format", "json",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["sdg_statements"] > 0
        assert payload["origin"] == "analyzed"

    def test_unreachable_server_friendly_error(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["stats", "figure2", "--server", "127.0.0.1:1"])
        assert "cannot reach server" in str(err.value)
