"""CLI tests (python -m repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestRun:
    def test_run_suite_program(self, capsys):
        code, out, err = run_cli(capsys, "run", "figure5")
        assert code == 0
        assert out.splitlines() == ["5", "20", "7"]

    def test_run_with_args(self, capsys):
        code, out, err = run_cli(capsys, "run", "figure1", "John Doe")
        assert code == 0
        assert "FIRST NAME: Joh" in out

    def test_run_reports_uncaught_exception(self, capsys):
        code, out, err = run_cli(capsys, "run", "figure4")
        assert code == 1
        assert "ClosedException" in err

    def test_run_file_from_disk(self, capsys, tmp_path):
        path = tmp_path / "hello.mj"
        path.write_text(
            'class Main { static void main(String[] args) { print("hey"); } }'
        )
        code, out, err = run_cli(capsys, "run", str(path))
        assert code == 0
        assert out.strip() == "hey"

    def test_unknown_program_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "nope-nope"])


class TestSlice:
    def seed_line(self, name: str, tag: str) -> int:
        from repro.lang.source import marker_line
        from repro.suite.loader import load_source

        return marker_line(load_source(name), "tag", tag)

    def test_thin_slice_output(self, capsys):
        line = self.seed_line("figure2", "seed")
        code, out, err = run_cli(capsys, "slice", "figure2", "--line", str(line))
        assert code == 0
        assert "thin slice" in out
        assert "new B()" in out
        assert "new A()" not in out  # explainer excluded

    def test_traditional_slice_output(self, capsys):
        line = self.seed_line("figure2", "seed")
        code, out, err = run_cli(
            capsys, "slice", "figure2", "--line", str(line), "--traditional"
        )
        assert code == 0
        assert "traditional slice" in out
        assert "new A()" in out

    def test_slice_on_empty_line_fails(self, capsys):
        code, out, err = run_cli(capsys, "slice", "figure2", "--line", "1")
        assert code == 1
        assert "no statements" in err


class TestWhyChopDot:
    def lines(self, name, *tag_names):
        from repro.lang.source import marker_line
        from repro.suite.loader import load_source

        source = load_source(name)
        return [marker_line(source, "tag", t) for t in tag_names]

    def test_why_shows_value_path(self, capsys):
        buggy, seed = self.lines("figure1", "buggy", "seed")
        code, out, err = run_cli(
            capsys, "why", "figure1", "--source", str(buggy), "--sink", str(seed)
        )
        assert code == 0
        assert "value flow" in out
        assert "substring" in out
        assert "elems" in out  # the path goes through the Vector

    def test_why_reports_unreachable(self, capsys):
        seed, buggy = self.lines("figure1", "seed", "buggy")
        code, out, err = run_cli(
            capsys, "why", "figure1", "--source", str(seed), "--sink", str(buggy)
        )
        assert code == 1
        assert "no producer-flow path" in err

    def test_chop_lists_corridor(self, capsys):
        buggy, seed = self.lines("figure1", "buggy", "seed")
        code, out, err = run_cli(
            capsys, "chop", "figure1", "--source", str(buggy), "--sink", str(seed)
        )
        assert code == 0
        assert "thin chop" in out
        assert "substring" in out

    def test_chop_empty(self, capsys):
        seed, buggy = self.lines("figure1", "seed", "buggy")
        code, out, err = run_cli(
            capsys, "chop", "figure1", "--source", str(seed), "--sink", str(buggy)
        )
        assert code == 1
        assert "empty chop" in err

    def test_dot_full_graph(self, capsys):
        code, out, err = run_cli(capsys, "dot", "figure2", "--no-stdlib")
        assert code == 0
        assert out.startswith("digraph sdg {")

    def test_dot_slice_to_file(self, capsys, tmp_path):
        from repro.lang.source import marker_line
        from repro.suite.loader import load_source

        seed = marker_line(load_source("figure2"), "tag", "seed")
        target = tmp_path / "slice.dot"
        code, out, err = run_cli(
            capsys, "dot", "figure2", "--no-stdlib", "--line", str(seed),
            "-o", str(target),
        )
        assert code == 0
        assert target.exists()
        assert "digraph" in target.read_text()


class TestExplainAndStats:
    def test_explain_shows_conditional(self, capsys):
        from repro.lang.source import marker_line
        from repro.suite.loader import load_source

        source = load_source("figure4")
        line = marker_line(source, "tag", "throw")
        code, out, err = run_cli(capsys, "explain", "figure4", "--line", str(line))
        assert code == 0
        assert "!open" in out

    def test_stats_reports_counts(self, capsys):
        code, out, err = run_cli(capsys, "stats", "figure2", "--no-stdlib")
        assert code == 0
        assert "call graph nodes" in out
        assert "SDG statements" in out
