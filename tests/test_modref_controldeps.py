"""Mod-ref analysis and control dependence tests."""

from __future__ import annotations

from repro.analysis.modref import compute_modref, static_loc
from repro.analysis.pointsto import solve_points_to
from repro.frontend import compile_source
from repro.ir import instructions as ins
from repro.sdg.controldeps import block_control_deps, instruction_control_deps


def analyze(source: str, stdlib: bool = False):
    compiled = compile_source(source, include_stdlib=stdlib)
    pts = solve_points_to(compiled.ir)
    return compiled, pts, compute_modref(compiled.ir, pts)


class TestModRef:
    SOURCE = """
    class Box { int v; }
    class Main {
      static void write(Box b) { b.v = 1; }
      static int read(Box b) { return b.v; }
      static void outer(Box b) { write(b); }
      static void main(String[] args) {
        Box b = new Box();
        outer(b);
        print(read(b));
      }
    }
    """

    def test_direct_mod(self):
        compiled, pts, mr = analyze(self.SOURCE)
        assert any(loc.field == "v" for loc in mr.local_mod["Main.write"])

    def test_direct_ref(self):
        compiled, pts, mr = analyze(self.SOURCE)
        assert any(loc.field == "v" for loc in mr.local_ref["Main.read"])

    def test_read_does_not_mod(self):
        compiled, pts, mr = analyze(self.SOURCE)
        assert not any(loc.field == "v" for loc in mr.mod.get("Main.read", ()))

    def test_transitive_mod_through_call(self):
        compiled, pts, mr = analyze(self.SOURCE)
        assert any(loc.field == "v" for loc in mr.mod["Main.outer"])
        assert not any(loc.field == "v" for loc in mr.local_mod.get("Main.outer", ()))

    def test_main_sees_everything(self):
        compiled, pts, mr = analyze(self.SOURCE)
        assert any(loc.field == "v" for loc in mr.mod["Main.main"])
        assert any(loc.field == "v" for loc in mr.ref["Main.main"])

    def test_static_fields_tracked(self):
        source = """
        class G { static int N; }
        class Main {
          static void bump() { G.N = G.N + 1; }
          static void main(String[] args) { bump(); print(G.N); }
        }
        """
        compiled, pts, mr = analyze(source)
        loc = static_loc("G", "N")
        assert loc in mr.mod["Main.bump"]
        assert loc in mr.ref["Main.bump"]
        assert loc in mr.mod["Main.main"]

    def test_array_writes_tracked(self):
        source = """
        class Main {
          static void fill(int[] a) { a[0] = 1; }
          static void main(String[] args) { fill(new int[2]); }
        }
        """
        compiled, pts, mr = analyze(source)
        assert any(loc.field == "[]" for loc in mr.mod["Main.fill"])

    def test_heap_param_count(self):
        compiled, pts, mr = analyze(self.SOURCE)
        assert mr.heap_param_count("Main.main") >= 2

    def test_recursive_functions_terminate(self):
        source = """
        class Box { int v; }
        class Main {
          static void ping(Box b, int n) { b.v = n; if (n > 0) { pong(b, n - 1); } }
          static void pong(Box b, int n) { if (n > 0) { ping(b, n - 1); } }
          static void main(String[] args) { ping(new Box(), 3); }
        }
        """
        compiled, pts, mr = analyze(source)
        assert any(loc.field == "v" for loc in mr.mod["Main.pong"])


class TestControlDeps:
    def function(self, source: str, name: str):
        compiled = compile_source(source)
        return compiled.ir.functions[name]

    def test_if_branch_controls_then_block(self):
        fn = self.function(
            "class A { static int m(boolean b) {"
            " int x = 0; if (b) { x = 1; } return x; } }",
            "A.m",
        )
        deps = instruction_control_deps(fn)
        stores = [
            i
            for i in fn.instructions()
            if isinstance(i, ins.Const) and i.value == 1
        ]
        assert stores
        controllers = deps.get(stores[0], set())
        assert any(isinstance(c, ins.Branch) for c in controllers)

    def test_straightline_code_has_no_control_deps(self):
        fn = self.function(
            "class A { static int m(int x) { int y = x + 1; return y; } }", "A.m"
        )
        assert instruction_control_deps(fn) == {}

    def test_loop_body_controlled_by_loop_condition(self):
        fn = self.function(
            "class A { static int m(int n) { int s = 0;"
            " while (n > 0) { s = s + n; n = n - 1; } return s; } }",
            "A.m",
        )
        deps = instruction_control_deps(fn)
        body_binops = [
            i for i in fn.instructions() if isinstance(i, ins.BinOp) and i.op == "+"
        ]
        assert body_binops
        assert deps.get(body_binops[0])

    def test_return_after_if_not_controlled(self):
        fn = self.function(
            "class A { static int m(boolean b) {"
            " int x = 0; if (b) { x = 1; } return x; } }",
            "A.m",
        )
        deps = instruction_control_deps(fn)
        final_return = fn.returns()[0]
        assert final_return not in deps

    def test_early_return_makes_suffix_control_dependent(self):
        fn = self.function(
            "class A { static int m(boolean b) {"
            " if (b) { return 1; } print(2); return 0; } }",
            "A.m",
        )
        deps = instruction_control_deps(fn)
        prints = [
            i for i in fn.instructions() if isinstance(i, ins.Call)
        ]
        assert prints and deps.get(prints[0])

    def test_catch_block_control_dependent_on_region(self):
        fn = self.function(
            "class E { E() {} }"
            "class A { static int m(boolean b) {"
            " try { if (b) { throw new E(); } } catch (E e) { return 1; }"
            " return 0; } }",
            "A.m",
        )
        deps = block_control_deps(fn)
        region = fn.try_regions[0]
        assert deps.get(region.catch_block)

    def test_nested_ifs_transitive(self):
        fn = self.function(
            "class A { static int m(boolean a, boolean b) {"
            " int x = 0; if (a) { if (b) { x = 1; } } return x; } }",
            "A.m",
        )
        deps = instruction_control_deps(fn)
        const_one = [
            i for i in fn.instructions() if isinstance(i, ins.Const) and i.value == 1
        ][0]
        # Directly controlled by the inner branch only; the outer branch
        # controls the inner branch (transitivity lives in the SDG walk).
        direct = deps[const_one]
        assert len(direct) == 1
        inner_branch = next(iter(direct))
        assert deps.get(inner_branch)
