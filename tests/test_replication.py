"""Crash-consistent warm state: replication, checkpoints, restarts.

PR 10's contract in four parts:

* **Ring replication** — every artifact a shard saves is copied to its
  successor holders, a local miss is served from a replica before any
  recompute, and an anti-entropy repair pass re-converges a peer that
  was down during fan-out.
* **Deadline propagation** — the router forwards the time *left*, a
  queued request whose deadline lapses is shed with a structured
  ``DeadlineExpired`` without consuming a worker.
* **Session checkpointing** — a fresh process pointed at the same
  store resumes a warm edit lineage from its sidecar instead of
  falling back to cold.
* **Rolling restart / hedging** — admin-driven drain-and-respawn and
  quantile-triggered request hedging, both riding the byte-identity
  guarantee.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro import AnalyzeOptions
from repro.artifact.encode import content_key
from repro.server.cache import AnalysisCache
from repro.server.client import ServerError, SliceClient
from repro.server.daemon import start_tcp_server
from repro.server.faults import FaultPlan
from repro.server.fragments import FragmentStore
from repro.server.replication import (
    Replicator,
    decode_payload,
    encode_payload,
)
from repro.server.router import Router
from repro.server.shardpool import (
    RESPAWN_BACKOFF_CAP_S,
    RESPAWN_BACKOFF_S,
    ShardPool,
    _respawn_backoff,
)
from repro.server.store import DiskStore
from repro.suite.loader import load_source
from tests.conftest import make_server
from tests.test_router import Tier, route, seed_line


def rpc(server, method, request_id=1, **params):
    line = json.dumps({"id": request_id, "method": method, "params": params})
    return json.loads(server.handle_line(line))


@pytest.fixture()
def tier():
    t = Tier(shards=2)
    yield t
    t.close()


def wait_until(predicate, timeout_s=5.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


# ----------------------------------------------------------------------
# Store hook
# ----------------------------------------------------------------------


class TestStoreHook:
    def test_on_save_fires_with_key_and_payload(self, tmp_path):
        store = DiskStore(tmp_path)
        seen = []
        store.on_save = lambda key, payload: seen.append((key, payload))
        options = AnalyzeOptions()
        source = load_source("figure1")
        key = content_key(source, options)
        from repro import analyze
        from repro.artifact.encode import encode_artifact

        payload = encode_artifact(
            analyze(source, options=options), key=key, include_rich=False
        )
        store.save_bytes(key, payload)
        assert seen == [(key, payload)]
        # Received replica copies are saved with replicate=False and
        # must NOT re-trigger fan-out (no ring orbiting).
        store.save_bytes(key, payload, replicate=False)
        assert len(seen) == 1
        assert store.keys() == [key]

    def test_on_save_failure_never_breaks_the_save(self, tmp_path):
        store = DiskStore(tmp_path)

        def boom(key, payload):
            raise RuntimeError("replication tier down")

        store.on_save = boom
        options = AnalyzeOptions()
        source = load_source("figure1")
        key = content_key(source, options)
        from repro import analyze
        from repro.artifact.encode import encode_artifact

        payload = encode_artifact(
            analyze(source, options=options), key=key, include_rich=False
        )
        store.save_bytes(key, payload)
        assert store.load_payload(key) == payload


# ----------------------------------------------------------------------
# Two-daemon replication
# ----------------------------------------------------------------------


class ReplicatedPair:
    """Two in-process daemons with private stores behind real TCP."""

    def __init__(self, tmp_path, factor=2, configure=True):
        self.servers = []
        self.stores = []
        self.addresses = []
        self.tcp = []
        for index in range(2):
            store = DiskStore(tmp_path / f"shard-{index}")
            server = make_server(AnalysisCache(store=store))
            tcp_server, thread = start_tcp_server(server)
            host, port = tcp_server.server_address[:2]
            self.servers.append(server)
            self.stores.append(store)
            self.tcp.append(tcp_server)
            self.addresses.append(f"{host}:{port}")
        if configure:
            self.configure(factor)

    def configure(self, factor=2):
        for index, address in enumerate(self.addresses):
            response = rpc(
                self.servers[index],
                "replicate_config",
                **{
                    "self_address": address,
                    "peers": self.addresses,
                    "factor": factor,
                },
            )
            assert response["ok"], response
            assert response["result"]["configured"] is True

    def close(self):
        for tcp_server in self.tcp:
            tcp_server.shutdown()
            tcp_server.server_close()
        for server in self.servers:
            server.close()


@pytest.fixture()
def pair(tmp_path):
    p = ReplicatedPair(tmp_path)
    yield p
    p.close()


class TestReplication:
    def test_write_fans_out_to_peer_store(self, pair):
        source = load_source("figure1")
        key = content_key(source, AnalyzeOptions())
        response = rpc(
            pair.servers[0],
            "slice",
            source=source,
            line=seed_line("figure1", "seed"),
        )
        assert response["ok"], response
        assert response["result"]["origin"] == "analyzed"
        assert key in pair.stores[0].keys()
        # Fan-out is async: the peer converges within the drain window.
        assert wait_until(lambda: key in pair.stores[1].keys())
        stats = pair.servers[0].replicator.stats()
        assert stats["replicated_total"] == 1
        # The received copy terminated at its holder — shard 1 pushed
        # nothing back around the ring.
        assert pair.servers[1].replicator.stats()["replicated_total"] == 0

    def test_local_miss_served_from_replica_no_recompute(self, tmp_path):
        pair = ReplicatedPair(tmp_path, configure=False)
        try:
            source = load_source("figure1")
            options = AnalyzeOptions()
            key = content_key(source, options)
            # Seed ONLY shard 1's store, before replication exists.
            cold = rpc(
                pair.servers[1],
                "slice",
                source=source,
                line=seed_line("figure1", "seed"),
            )
            assert cold["ok"] and cold["result"]["origin"] == "analyzed"
            pair.configure(factor=2)
            warm = rpc(
                pair.servers[0],
                "slice",
                source=source,
                line=seed_line("figure1", "seed"),
            )
            assert warm["ok"], warm
            assert warm["result"]["origin"] == "replica"
            # Zero recomputes: the cache never fell through to analyze.
            assert pair.servers[0].cache.misses == 0
            assert pair.servers[0].cache.replica_hits == 1
            # Read repair persisted the fetched copy locally.
            assert key in pair.stores[0].keys()
            # And the byte payloads agree across shards.
            assert pair.stores[0].load_payload(key) == pair.stores[
                1
            ].load_payload(key)
        finally:
            pair.close()

    def test_repair_converges_a_stale_peer(self, tmp_path):
        pair = ReplicatedPair(tmp_path, configure=False)
        try:
            source = load_source("figure2")
            key = content_key(source, AnalyzeOptions())
            cold = rpc(
                pair.servers[0],
                "slice",
                source=source,
                line=seed_line("figure2", "seed"),
            )
            assert cold["ok"]
            assert key not in pair.stores[1].keys()
            pair.configure(factor=2)
            summary = rpc(pair.servers[0], "repair", wait=True)
            assert summary["ok"], summary
            assert summary["result"]["pushed"] == 1
            assert summary["result"]["errors"] == 0
            assert key in pair.stores[1].keys()
            # A second pass has nothing left to push (idempotent).
            again = rpc(pair.servers[0], "repair", wait=True)
            assert again["result"]["pushed"] == 0
        finally:
            pair.close()

    def test_put_artifact_rejects_corrupt_payload(self, pair):
        source = load_source("figure1")
        key = content_key(source, AnalyzeOptions())
        garbage = encode_payload(b"not an artifact")
        response = rpc(
            pair.servers[0], "put_artifact", key=key, payload=garbage
        )
        assert not response["ok"]
        assert response["error"]["type"] == "BadParams"
        assert key not in pair.stores[0].keys()

    def test_get_artifact_not_found_is_structured(self, pair):
        response = rpc(pair.servers[0], "get_artifact", key="0" * 64)
        assert not response["ok"]
        assert response["error"]["type"] == "NotFound"

    def test_health_reports_replication_and_store_root(self, pair):
        health = rpc(pair.servers[0], "health")["result"]
        assert health["store"]["root"] == str(pair.stores[0].root)
        replication = health["replication"]
        assert replication["factor"] == 2
        assert replication["peers"] == 1

    def test_payload_codec_roundtrip(self):
        payload = bytes(range(256))
        assert decode_payload(encode_payload(payload)) == payload
        with pytest.raises(ValueError):
            decode_payload("@@@not-base64@@@")
        with pytest.raises(ValueError):
            decode_payload(123)


class TestReplicatorPlacement:
    def test_holders_are_failover_prefix(self, tmp_path):
        peers = [f"127.0.0.1:{7000 + i}" for i in range(4)]
        replicator = Replicator(
            DiskStore(tmp_path), peers[0], peers, factor=2
        )
        try:
            for key in ("a" * 64, "b" * 64, "c" * 64):
                holders = replicator.holders(key)
                assert holders == replicator.ring.preference(key)[:2]
                assert len(set(holders)) == 2
        finally:
            replicator.close()


# ----------------------------------------------------------------------
# Deadline propagation
# ----------------------------------------------------------------------


class TestDeadlineExpired:
    def test_queued_request_is_shed_without_a_worker(self):
        plan = FaultPlan(analysis_delay_s=2.0)
        server = make_server(
            AnalysisCache(fault_plan=plan),
            fault_plan=plan,
            workers=1,
            executor="thread",
        )
        try:
            results = []

            def occupy():
                results.append(
                    rpc(
                        server,
                        "slice",
                        source=load_source("figure1"),
                        line=seed_line("figure1", "seed"),
                    )
                )

            blocker = threading.Thread(target=occupy)
            blocker.start()
            assert wait_until(
                lambda: rpc(server, "health")["result"]["busy"] == 1
            )
            queued = rpc(
                server,
                "slice",
                source=load_source("figure2"),
                line=seed_line("figure2", "seed"),
                deadline=0.3,
            )
            blocker.join(timeout=30)
            assert not queued["ok"]
            assert queued["error"]["type"] == "DeadlineExpired"
            assert "queued" in queued["error"]["message"]
            # The blocked request itself completed normally.
            assert results and results[0]["ok"]
        finally:
            server.close()

    def test_router_forwards_remaining_deadline(self, tier):
        captured = {}
        address = tier.pool.addresses()[0]
        shard = tier.pool.shard(address)
        original = shard.call

        def recording(method, params):
            if method == "slice":
                captured["deadline"] = params.get("deadline")
                time.sleep(0.2)
            return original(method, params)

        shard.call = recording
        # Force a single-candidate walk so the recorded shard serves.
        other = [a for a in tier.pool.addresses() if a != address][0]
        tier.kill(other)
        response = route(
            tier.router,
            "slice",
            source=load_source("figure1"),
            line=seed_line("figure1", "seed"),
            deadline=30.0,
        )
        assert response["ok"], response
        assert captured["deadline"] is not None
        assert 0 < captured["deadline"] <= 30.0

    def test_router_sheds_when_deadline_lapses_mid_walk(self, tier):
        for address in tier.pool.addresses():
            shard = tier.pool.shard(address)

            def slow_fail(method, params, _shard=shard):
                time.sleep(0.3)
                raise ServerError("Disconnected", "injected", None)

            shard.call = slow_fail
        response = route(
            tier.router,
            "slice",
            source=load_source("figure1"),
            line=seed_line("figure1", "seed"),
            deadline=0.2,
        )
        assert not response["ok"]
        assert response["error"]["type"] == "DeadlineExpired"
        assert tier.router.deadline_expired_total == 1


# ----------------------------------------------------------------------
# Hedging
# ----------------------------------------------------------------------


class TestHedging:
    def test_slow_primary_hedged_to_replica(self, tmp_path):
        tier = Tier(shards=2, hedge=True, hedge_delay_s=0.05)
        try:
            source = load_source("figure1")
            line = seed_line("figure1", "seed")
            key = tier.router._routing_key({"source": source})
            primary = tier.router.ring.preference(key)[0]
            shard = tier.pool.shard(primary)
            original = shard.call

            def sluggish(method, params):
                if method == "slice":
                    time.sleep(0.6)
                return original(method, params)

            shard.call = sluggish
            start = time.monotonic()
            response = route(tier.router, "slice", source=source, line=line)
            elapsed = time.monotonic() - start
            assert response["ok"], response
            assert tier.router.hedges_total == 1
            assert tier.router.hedge_wins == 1
            # The hedge answered well before the sluggish primary.
            assert elapsed < 0.6
        finally:
            tier.close()

    def test_no_hedge_without_latency_signal(self, tier):
        # Adaptive mode with zero samples: the first request must not
        # hedge (there is no quantile to trigger on).
        response = route(
            tier.router,
            "slice",
            source=load_source("figure1"),
            line=seed_line("figure1", "seed"),
        )
        assert response["ok"]
        assert tier.router.hedges_total == 0
        assert tier.router._hedge_delay() is None

    def test_fixed_delay_beats_quantile(self):
        router_tier = Tier(shards=2, hedge=True, hedge_delay_s=0.25)
        try:
            assert router_tier.router._hedge_delay() == 0.25
        finally:
            router_tier.close()


# ----------------------------------------------------------------------
# Session checkpointing
# ----------------------------------------------------------------------


def _insert_stmt(source: str) -> str:
    from repro.incremental import split_units

    spans = [
        u
        for u in split_units(source).units
        if u.kind == "method" and u.end_line > u.start_line
    ]
    unit = spans[0]
    lines = source.splitlines(keepends=True)
    lines.insert(unit.start_line, '        String __ck = "checkpoint";\n')
    return "".join(lines)


class TestCheckpointResume:
    def test_fresh_process_resumes_lineage_from_sidecar(self, tmp_path):
        store_root = tmp_path / "store"
        source = load_source("figure1")
        options = AnalyzeOptions()

        cache1 = AnalysisCache(
            store=DiskStore(store_root),
            fragments=FragmentStore(
                checkpoint_dir=store_root / "sessions"
            ),
        )
        _, origin = cache1.get_entry(source, "fig1.mj", options)
        assert origin == "analyzed"
        assert cache1.fragments.checkpoints_written == 1
        sidecars = list((store_root / "sessions").glob("*.json"))
        assert len(sidecars) == 1

        # "Crash": a brand-new cache/fragment store over the same root
        # — exactly what a respawned shard daemon constructs.
        cache2 = AnalysisCache(
            store=DiskStore(store_root),
            fragments=FragmentStore(
                checkpoint_dir=store_root / "sessions"
            ),
        )
        edited = _insert_stmt(source)
        entry, origin = cache2.get_entry(edited, "fig1.mj", options)
        assert origin == "incremental"
        frags = cache2.fragments.stats()
        assert frags["sessions_restored"] == 1
        assert frags["sessions_seeded"] == 1
        # Byte identity held across the resume.
        from repro import analyze
        from repro.artifact.encode import encode_artifact

        cold = encode_artifact(
            analyze(edited, "fig1.mj", options=options),
            key=content_key(edited, options),
            include_rich=False,
        )
        assert bytes(entry.view._buffer) == cold

    def test_edit_advances_the_checkpoint_anchor(self, tmp_path):
        store_root = tmp_path / "store"
        source = load_source("figure1")
        options = AnalyzeOptions()
        cache1 = AnalysisCache(
            store=DiskStore(store_root),
            fragments=FragmentStore(
                checkpoint_dir=store_root / "sessions"
            ),
        )
        cache1.get_entry(source, "fig1.mj", options)
        edited = _insert_stmt(source)
        _, origin = cache1.get_entry(edited, "fig1.mj", options)
        assert origin == "incremental"
        # The edit wrote a sidecar for ITS structure (new lineage key),
        # anchored at the edited artifact.
        recorded = [
            json.loads(p.read_text())
            for p in (store_root / "sessions").glob("*.json")
        ]
        keys = {r["key"] for r in recorded}
        assert content_key(edited, options) in keys

    def test_corrupt_sidecar_falls_back_to_cold(self, tmp_path):
        store_root = tmp_path / "store"
        source = load_source("figure1")
        options = AnalyzeOptions()
        cache1 = AnalysisCache(
            store=DiskStore(store_root),
            fragments=FragmentStore(
                checkpoint_dir=store_root / "sessions"
            ),
        )
        cache1.get_entry(source, "fig1.mj", options)
        for sidecar in (store_root / "sessions").glob("*.json"):
            sidecar.write_text("{ truncated")
        cache2 = AnalysisCache(
            store=DiskStore(store_root),
            fragments=FragmentStore(
                checkpoint_dir=store_root / "sessions"
            ),
        )
        edited = _insert_stmt(source)
        _, origin = cache2.get_entry(edited, "fig1.mj", options)
        assert origin == "analyzed"
        assert cache2.fragments.sessions_restored == 0

    def test_no_checkpoint_dir_means_no_sidecars(self, tmp_path):
        cache = AnalysisCache(
            store=DiskStore(tmp_path / "store"),
            fragments=FragmentStore(),
        )
        cache.get_entry(load_source("figure1"), "fig1.mj", AnalyzeOptions())
        assert not (tmp_path / "store" / "sessions").exists()
        assert cache.fragments.checkpoints_written == 0


# ----------------------------------------------------------------------
# Respawn backoff and rolling restart
# ----------------------------------------------------------------------


class TestRespawnBackoff:
    def test_jitter_stays_within_bounds(self):
        for failures in range(10):
            base = min(
                RESPAWN_BACKOFF_S * (2 ** min(failures, 6)),
                RESPAWN_BACKOFF_CAP_S,
            )
            for _ in range(50):
                delay = _respawn_backoff(failures)
                assert base * 0.5 <= delay <= base * 1.5

    def test_backoff_caps(self):
        assert _respawn_backoff(100) <= RESPAWN_BACKOFF_CAP_S * 1.5


class TestRollingRestart:
    def test_external_shards_are_refused(self, tier):
        response = route(tier.router, "rolling_restart")
        assert response["ok"], response
        assert response["result"]["restarted"] == []
        assert all(
            f["error"] == "externally managed"
            for f in response["result"]["failed"]
        )

    def test_spawned_shards_restart_in_place(self):
        pool = ShardPool(probe_interval_s=0.2)
        pool.spawn_local(
            1, ["--no-disk-cache", "--workers", "1", "--timeout", "30"]
        )
        router = Router(pool)
        try:
            pool.probe_all()
            address = pool.addresses()[0]
            old_pid = pool.shard(address).process.pid
            result = route(tier_router := router, "rolling_restart")
            assert result["ok"], result
            restarted = result["result"]["restarted"]
            assert [r["address"] for r in restarted] == [address]
            assert restarted[0]["pid"] != old_pid
            assert result["result"]["failed"] == []
            # The respawned shard serves on the ORIGINAL port.
            ok = route(
                tier_router,
                "slice",
                source=load_source("figure1"),
                line=seed_line("figure1", "seed"),
            )
            assert ok["ok"], ok
            snap = pool.snapshot()[address]
            assert snap["consecutive_respawns"] >= 1
            assert snap["last_respawn_ts"] is not None
        finally:
            router.shutting_down = True
            pool.stop()
