"""Artifact integrity end to end: digests, structural validation,
format migration, scrubbing, quarantine, and serve-time degrade.

The invariant all of these defend: corrupt bytes cost latency (a
quarantine move plus a cold re-analysis), never a wrong answer.
"""

from __future__ import annotations

import errno
import struct

import pytest

from repro import AnalyzeOptions, analyze
from repro.artifact import (
    ARTIFACT_FORMAT,
    ArtifactDigestError,
    ArtifactError,
    ArtifactFormatError,
    ArtifactStaleError,
    ArtifactView,
    content_key,
    encode_artifact,
)
from repro.artifact.format import (
    _FILE_CRC_OFFSET,
    _file_crc,
    pack_sections,
    pack_sections_v1,
    parse_sections,
)
from repro.server.cache import AnalysisCache, CacheEntry, cache_key
from repro.server.faults import (
    FaultPlan,
    stale_artifact_meta,
)
from repro.server.store import DiskStore
from tests.conftest import make_server

SMALL = 'class Main { static void main(String[] args) { print("a"); } }'
OTHER = 'class Main { static void main(String[] args) { print("b"); } }'
THIRD = 'class Main { static void main(String[] args) { print("c"); } }'
OPTIONS = AnalyzeOptions(include_stdlib=False)


def make_payload(source: str = SMALL) -> tuple[str, bytes]:
    """``(key, format-2 artifact bytes)`` for one tiny analysis."""
    key = content_key(source, OPTIONS)
    analyzed = analyze(source, "<test>", options=OPTIONS)
    return key, encode_artifact(analyzed, key=key)


def repack_with(payload: bytes, tag: bytes, data: bytes) -> bytes:
    """Re-pack ``payload`` with one section replaced.

    ``pack_sections`` recomputes every digest, so the result is a
    *digest-valid* artifact whose content is wrong — exactly what
    structural validation (not checksums) must catch.
    """
    sections = []
    for name, (offset, length) in parse_sections(payload).items():
        body = payload[offset : offset + length]
        sections.append((name, data if name == tag else bytes(body)))
    return pack_sections(sections)


def downgrade_to_v1(payload: bytes) -> bytes:
    """The same sections re-packed in the digest-less v1 layout."""
    sections = [
        (name, bytes(payload[offset : offset + length]))
        for name, (offset, length) in parse_sections(payload).items()
    ]
    return pack_sections_v1(sections)


class TestDigestRejection:
    def test_fresh_encode_passes_deep_verify(self):
        _, payload = make_payload()
        view = ArtifactView.from_buffer(payload, verify="deep")
        assert view.node_count > 0

    def test_bit_flip_caught_by_header_verify(self):
        _, payload = make_payload()
        blob = bytearray(payload)
        blob[len(blob) // 2] ^= 0x10
        with pytest.raises(ArtifactDigestError):
            ArtifactView.from_buffer(bytes(blob), verify="header")

    def test_truncation_rejected(self):
        _, payload = make_payload()
        with pytest.raises(ArtifactError):
            ArtifactView.from_buffer(payload[: len(payload) // 3], verify="header")

    def test_section_digest_catches_flip_that_header_misses(self):
        # Patch the whole-file crc so the header level passes, proving
        # the per-section digests are a second, independent layer.
        _, payload = make_payload()
        blob = bytearray(payload)
        blob[len(blob) // 2] ^= 0x10
        struct.pack_into("<I", blob, _FILE_CRC_OFFSET, _file_crc(blob))
        blob = bytes(blob)
        assert ArtifactView.from_buffer(blob, verify="header").node_count > 0
        with pytest.raises(ArtifactDigestError):
            ArtifactView.from_buffer(blob, verify="deep")

    def test_structure_check_catches_digest_valid_garbage(self):
        # Valid digests over out-of-range edge targets: only the deep
        # level's structural bounds walk can refuse these bytes.
        _, payload = make_payload()
        spans = parse_sections(payload)
        bad = repack_with(payload, b"ETGT", b"\xff" * spans[b"ETGT"][1])
        assert ArtifactView.from_buffer(bad, verify="header").node_count > 0
        with pytest.raises(ArtifactError):
            ArtifactView.from_buffer(bad, verify="deep")

    def test_future_format_raises_format_error(self):
        _, payload = make_payload()
        blob = bytearray(payload)
        struct.pack_into("<I", blob, 8, ARTIFACT_FORMAT + 1)
        with pytest.raises(ArtifactFormatError) as info:
            ArtifactView.from_buffer(bytes(blob), verify="none")
        assert info.value.found == ARTIFACT_FORMAT + 1


class TestFormatMigration:
    def test_v1_artifact_lazily_migrated_on_load(self, tmp_path):
        key, payload = make_payload()
        store = DiskStore(tmp_path)
        path = store.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(downgrade_to_v1(payload))

        view = store.load_view(key)
        assert view is not None
        assert store.stats.migrated == 1
        assert store.stats.quarantined == 0
        # The file was rewritten in the current format and passes deep
        # verification; every flat section round-trips byte-identical
        # (RICH is a pickle and pickle bytes are not canonical).
        rewritten = path.read_bytes()
        assert struct.unpack_from("<I", rewritten, 8)[0] == ARTIFACT_FORMAT
        migrated = ArtifactView.from_buffer(rewritten, verify="deep")
        old_spans = parse_sections(payload)
        new_spans = parse_sections(rewritten)
        for tag, (offset, length) in old_spans.items():
            if tag == b"RICH":
                continue
            new_offset, new_length = new_spans[tag]
            assert (
                rewritten[new_offset : new_offset + new_length]
                == payload[offset : offset + length]
            ), tag
        assert view.counts == migrated.counts

    def test_v1_with_wrong_key_discarded_not_quarantined(self, tmp_path):
        # A v1 file under the wrong address is stale, not corrupt: the
        # migration's semantic validation refuses it and it is unlinked.
        _, payload = make_payload()
        other_key = content_key(OTHER, OPTIONS)
        store = DiskStore(tmp_path)
        path = store.path_for(other_key)
        path.parent.mkdir(parents=True)
        path.write_bytes(downgrade_to_v1(payload))

        assert store.load_view(other_key) is None
        assert store.stats.discarded == 1
        assert store.stats.quarantined == 0
        assert not path.exists()

    def test_migrate_flat_v1_rejects_wrong_key(self):
        from repro.artifact import migrate_flat_v1

        _, payload = make_payload()
        with pytest.raises(ArtifactStaleError):
            migrate_flat_v1(downgrade_to_v1(payload), "0" * 64)


class TestScrub:
    def seed_store(self, tmp_path) -> tuple[DiskStore, AnalysisCache]:
        store = DiskStore(tmp_path)
        cache = AnalysisCache(store=store)
        for source in (SMALL, OTHER, THIRD):
            cache.get_or_analyze(source, "a.mj", OPTIONS)
        return store, cache

    def test_scrub_clean_store(self, tmp_path):
        store, _ = self.seed_store(tmp_path)
        summary = store.scrub()
        assert summary["clean"] == 3
        assert summary["corrupt"] == summary["stale"] == 0
        assert store.stats.scrubs == 1 and store.stats.scrubbed == 3
        assert store.last_scrub is summary

    def test_scrub_quarantines_corrupt_discards_stale(self, tmp_path):
        store, _ = self.seed_store(tmp_path)
        corrupt_path = store.path_for(cache_key(SMALL, OPTIONS))
        blob = bytearray(corrupt_path.read_bytes())
        blob[len(blob) // 2] ^= 0x10
        corrupt_path.write_bytes(bytes(blob))
        stale_path = store.path_for(cache_key(OTHER, OPTIONS))
        stale_artifact_meta(stale_path)

        summary = store.scrub()
        assert summary == {
            "at": summary["at"],
            "clean": 1,
            "corrupt": 1,
            "stale": 1,
            "legacy": 0,
        }
        # Corrupt bytes are evidence and move to corrupt/ with a reason.
        quarantined = store.corrupt_dir / corrupt_path.name
        assert quarantined.exists()
        assert "scrub" in quarantined.with_suffix(".art.reason").read_text()
        # Stale bytes are legitimate-but-unwanted and just disappear.
        assert not stale_path.exists()
        assert not (store.corrupt_dir / stale_path.name).exists()
        assert store.stats.quarantined == 1
        assert store.stats.discarded == 1

    def test_scrub_leaves_v1_files_for_lazy_migration(self, tmp_path):
        key, payload = make_payload()
        store = DiskStore(tmp_path)
        path = store.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(downgrade_to_v1(payload))
        summary = store.scrub()
        assert summary["legacy"] == 1
        assert path.exists()
        assert store.load_view(key) is not None
        assert store.stats.migrated == 1

    def test_scrub_skips_already_quarantined_files(self, tmp_path):
        store, _ = self.seed_store(tmp_path)
        path = store.path_for(cache_key(SMALL, OPTIONS))
        path.write_bytes(b"garbage that is not an artifact")
        first = store.scrub()
        assert first["corrupt"] == 1
        second = store.scrub()
        assert second["corrupt"] == 0
        assert store.stats.quarantined == 1

    def test_quarantine_trims_to_cap(self, tmp_path):
        store = DiskStore(tmp_path, quarantine_max_files=2)
        sub = store.root / "ab"
        sub.mkdir()
        for index in range(4):
            bad = sub / f"{index:064x}.art"
            bad.write_bytes(b"junk")
            store._quarantine(bad, "test")
        survivors = list(store.corrupt_dir.glob("*.art"))
        assert len(survivors) == 2


class TestReadFailureQuarantine:
    def test_transient_read_errors_quarantine_after_limit(
        self, tmp_path, monkeypatch
    ):
        store = DiskStore(tmp_path, read_failure_limit=3)
        cache = AnalysisCache(store=store)
        cache.get_or_analyze(SMALL, "a.mj", OPTIONS)
        key = cache_key(SMALL, OPTIONS)
        path = store.path_for(key)

        real_open = ArtifactView.open
        monkeypatch.setattr(
            ArtifactView,
            "open",
            staticmethod(
                lambda *a, **k: (_ for _ in ()).throw(
                    OSError(errno.EIO, "Input/output error")
                )
            ),
        )
        # Two failures: counted as misses, the file stays in place.
        assert store.load_view(key) is None
        assert store.load_view(key) is None
        assert store.stats.quarantined == 0 and path.exists()
        # The third consecutive failure crosses the limit: quarantined.
        assert store.load_view(key) is None
        assert store.stats.quarantined == 1
        assert store.stats.corrupt_found == 1
        assert (store.corrupt_dir / path.name).exists()
        assert not path.exists()

        # After recomputation (a fresh cache — the old one still holds
        # the entry in memory) the store heals and the counter resets.
        monkeypatch.setattr(ArtifactView, "open", staticmethod(real_open))
        AnalysisCache(store=store).get_or_analyze(SMALL, "a.mj", OPTIONS)
        assert store.load_view(key) is not None
        assert store._read_failures == {}


class TestLiveViewsOutliveEviction:
    """Satellite regression: unlink/replace never break a served view.

    POSIX keeps an inode alive while it is mapped, so both prune()
    unlinks and quarantine moves are safe under the in-memory LRU.
    """

    def test_lru_view_survives_prune_unlink(self, tmp_path):
        store = DiskStore(tmp_path)
        cache = AnalysisCache(store=store)
        cache.get_or_analyze(SMALL, "a.mj", OPTIONS)
        key = cache_key(SMALL, OPTIONS)

        restarted = AnalysisCache(store=DiskStore(tmp_path))
        entry, origin = restarted.get_entry(SMALL, "a.mj", OPTIONS)
        assert origin == "disk" and entry.view is not None
        before = entry.slicer("thin").slice_from_line(1).traversal.order

        remaining = restarted.store.prune(0)
        assert remaining == 0
        assert not restarted.store.path_for(key).exists()
        # The unlinked-but-mapped view still serves identical answers.
        after = entry.slicer("thin").slice_from_line(1).traversal.order
        assert after == before
        assert entry.view.counts["sdg_statements"] > 0

    def test_lru_view_survives_quarantine_move(self, tmp_path):
        store = DiskStore(tmp_path)
        AnalysisCache(store=store).get_or_analyze(SMALL, "a.mj", OPTIONS)
        key = cache_key(SMALL, OPTIONS)
        view = store.load_view(key)
        assert view is not None
        before = view.counts
        store._quarantine(store.path_for(key), "test move under live map")
        assert view.counts == before
        view.close()


class TestFaultDials:
    def drill(self, tmp_path, plan: FaultPlan) -> DiskStore:
        store = DiskStore(tmp_path)
        AnalysisCache(store=store).get_or_analyze(SMALL, "a.mj", OPTIONS)
        store.fault_plan = plan
        return store

    def test_bit_flip_dial_quarantines_and_recomputes(self, tmp_path):
        store = self.drill(tmp_path, FaultPlan(bit_flips=1))
        key = cache_key(SMALL, OPTIONS)
        assert store.load_view(key) is None
        assert store.stats.quarantined == 1
        # The dial is one-shot; after recompute the store heals.
        cache = AnalysisCache(store=store)
        analyzed, origin = cache.get_or_analyze(SMALL, "a.mj", OPTIONS)
        assert origin == "analyzed"
        assert store.load_view(key) is not None

    def test_truncate_dial_quarantines(self, tmp_path):
        store = self.drill(tmp_path, FaultPlan(truncate_artifacts=1))
        assert store.load_view(cache_key(SMALL, OPTIONS)) is None
        assert store.stats.quarantined == 1
        assert store.stats.corrupt_found == 1

    def test_stale_meta_dial_discards_not_quarantines(self, tmp_path):
        # Every digest in a stale-meta rewrite is valid: the distinction
        # between "corrupt" (quarantine) and "stale" (discard) is load-
        # bearing, and this dial proves validation draws it correctly.
        store = self.drill(tmp_path, FaultPlan(stale_meta=1))
        assert store.load_view(cache_key(SMALL, OPTIONS)) is None
        assert store.stats.discarded == 1
        assert store.stats.quarantined == 0
        assert list(store.corrupt_dir.glob("*.art")) == []


class TestServeTimeDegrade:
    def rpc(self, server, method, **params):
        import json

        line = json.dumps({"id": 1, "method": method, "params": params})
        return json.loads(server.handle_line(line))

    def test_mid_slice_corruption_degrades_to_recompute(self, tmp_path):
        store = DiskStore(tmp_path)
        server = make_server(AnalysisCache(store=store), executor="thread")
        try:
            first = self.rpc(
                server, "slice", source=SMALL, line=1, include_stdlib=False
            )
            assert first["ok"]
            truth = first["result"]["lines"]

            # Poison the in-memory entry with digest-valid bytes whose
            # edge targets are out of range: load-time verification
            # passes, the flat walk raises mid-slice.  (Simulates
            # post-verification memory rot; cache_key is the daemon's.)
            key = cache_key(SMALL, AnalyzeOptions(include_stdlib=False))
            path = store.path_for(key)
            payload = path.read_bytes()
            spans = parse_sections(payload)
            bad = repack_with(payload, b"ETGT", b"\xff" * spans[b"ETGT"][1])
            server.cache._entries[key] = CacheEntry(
                view=ArtifactView.from_buffer(bad, verify="none")
            )

            second = self.rpc(
                server, "slice", source=SMALL, line=1, include_stdlib=False
            )
            assert second["ok"], second
            assert second["result"]["lines"] == truth
            assert second["result"]["origin"] == "analyzed"
            assert server.degraded_recomputes == 1
            # The on-disk copy was pulled for post-mortem and rewritten
            # clean by the recompute.
            assert (store.corrupt_dir / path.name).exists()
            assert path.exists()

            # Health surfaces both the degrade and the store counters.
            health = self.rpc(server, "health")["result"]
            assert health["degraded_recomputes"] == 1
            assert health["store"]["quarantined"] == 1
        finally:
            server.close()

    def test_scrub_timer_heals_rotted_store_in_background(self, tmp_path):
        import time

        store = DiskStore(tmp_path)
        AnalysisCache(store=store).get_or_analyze(SMALL, "a.mj", OPTIONS)
        path = store.path_for(cache_key(SMALL, OPTIONS))
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x10
        path.write_bytes(bytes(blob))

        server = make_server(
            AnalysisCache(store=store),
            executor="thread",
            scrub_interval_s=30.0,  # first pass runs immediately
        )
        try:
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if store.stats.quarantined:
                    break
                time.sleep(0.02)
            assert store.stats.quarantined == 1
            assert store.stats.scrubs >= 1
            assert (store.corrupt_dir / path.name).exists()
        finally:
            server.close()
