"""The flat artifact format: round-trip, differential, and rejection.

The contract under test is the tentpole guarantee of the zero-copy
store: a slice computed over an :class:`~repro.artifact.ArtifactView`
(no object graph, arrays mapped straight off the encoded bytes) must be
*byte-identical* on the wire to the same slice computed over the rich
:class:`~repro.AnalyzedProgram`, for every suite program and both
flavors.  Alongside it: the escape hatch back to the object graph, the
stale/corrupt rejection paths a disk store depends on, and the
determinism guarantees that retired the ``_NIL`` hash substitutions.
"""

from __future__ import annotations

import hashlib
import os
import struct
import subprocess
import sys

import pytest

from repro import AnalyzeOptions, analyze
from repro.artifact import (
    ARTIFACT_FORMAT,
    MAGIC,
    ArtifactError,
    ArtifactView,
    canonical_bytes,
    content_key,
    encode_artifact,
)
from repro.server.protocol import encode_message, slice_payload, stats_payload
from repro.slicing.flatslice import flat_slicer
from repro.slicing.tabulation import (
    THIN_SAME_LEVEL,
    TRADITIONAL_SAME_LEVEL,
    TabulationSlicer,
)
from repro.suite.harness import SUITE_PROGRAMS
from repro.suite.loader import load_source

#: Analyses are expensive; every test shares one bundle per program.
_BUNDLES: dict[str, tuple[str, object, bytes, ArtifactView]] = {}


def bundle(name: str):
    if name not in _BUNDLES:
        source = load_source(name)
        analyzed = analyze(source, f"{name}.mj")
        key = content_key(source, AnalyzeOptions())
        payload = encode_artifact(analyzed, key=key)
        _BUNDLES[name] = (source, analyzed, payload, ArtifactView.from_buffer(payload))
    return _BUNDLES[name]


def seeded_lines(view: ArtifactView, count: int = 10) -> list[int]:
    """An even sample of source lines that actually carry seeds."""
    lines = sorted(
        {view.node_line(n) for n in view.graph_nodes() if view.is_statement(n)}
    )
    lines = [line for line in lines if line > 0]
    step = max(1, len(lines) // count)
    return lines[::step][:count]


class TestDifferential:
    """Flat vs rich must be byte-identical on the wire."""

    @pytest.mark.parametrize("name", SUITE_PROGRAMS)
    def test_slice_payloads_identical_flat_vs_rich(self, name):
        source, analyzed, payload, view = bundle(name)
        for flavor in ("thin", "traditional"):
            rich = (
                analyzed.thin_slicer
                if flavor == "thin"
                else analyzed.traditional_slicer
            )
            flat = flat_slicer(view, flavor)
            for line in seeded_lines(view):
                wire_rich = encode_message(
                    slice_payload(
                        rich.slice_from_line(line),
                        program=name,
                        line=line,
                        flavor=flavor,
                        context=2,
                    )
                )
                wire_flat = encode_message(
                    slice_payload(
                        flat.slice_from_line(line),
                        program=name,
                        line=line,
                        flavor=flavor,
                        context=2,
                    )
                )
                assert wire_flat == wire_rich, (name, flavor, line)

    def test_seed_sets_identical(self):
        _, analyzed, _, view = bundle("figure2")
        from repro.sdg.nodes import node_line

        for line in range(1, len(view.source_lines()) + 1):
            flat_seeds = view.seeds_at_line(line)
            rich_seeds = analyzed.thin_slicer.seeds_at_line(line)
            assert len(flat_seeds) == len(rich_seeds), line
            assert sorted(view.node_line(n) for n in flat_seeds) == sorted(
                node_line(n) for n in rich_seeds
            ), line

    def test_stats_counts_identical(self):
        _, analyzed, _, view = bundle("figure2")
        rich = stats_payload(analyzed, "figure2")
        for field, value in view.counts.items():
            if field in rich:
                assert value == rich[field], field


class TestTabulationOverView:
    """The demand-driven slicer runs over either graph representation."""

    @pytest.mark.parametrize(
        "same_level", [THIN_SAME_LEVEL, TRADITIONAL_SAME_LEVEL]
    )
    def test_tabulation_view_matches_sdg(self, same_level):
        source, analyzed, payload, view = bundle("figure2")
        over_sdg = TabulationSlicer(
            analyzed.compiled, analyzed.sdg, same_level=same_level
        )
        over_view = TabulationSlicer(None, view, same_level=same_level)
        for line in seeded_lines(view):
            expected = over_sdg.slice_from_line(line)
            got = over_view.slice_from_line(line)
            assert got.lines == expected.lines, line
            assert got.source_view() == expected.source_view(), line


class TestRoundTrip:
    def test_rich_round_trip(self):
        _, analyzed, _, view = bundle("figure2")
        restored = view.to_analyzed_program()
        assert restored.timings is None
        assert restored.sdg.statement_count() == analyzed.sdg.statement_count()
        assert restored.sdg.edge_count() == analyzed.sdg.edge_count()
        # Memoized: the unpickle happens once.
        assert view.to_analyzed_program() is restored

    def test_reanalysis_round_trip_without_rich(self):
        """Without the RICH section the view re-derives the program
        from its embedded source + options."""
        source, analyzed, _, _ = bundle("figure2")
        lean = encode_artifact(analyzed, include_rich=False)
        view = ArtifactView.from_buffer(lean)
        restored = view.to_analyzed_program()
        assert restored.sdg.statement_count() == analyzed.sdg.statement_count()
        assert restored.sdg.edge_count() == analyzed.sdg.edge_count()

    def test_source_text_round_trips(self):
        source, analyzed, _, view = bundle("figure2")
        assert view.text.startswith(source)
        assert view.source_lines() == analyzed.compiled.source.lines()


class TestRejection:
    """A disk store must be able to refuse stale or torn artifacts."""

    def test_bad_magic_rejected(self):
        with pytest.raises(ArtifactError):
            ArtifactView.from_buffer(b"\x80\x04 this is not an artifact")

    def test_format_mismatch_rejected(self):
        _, _, payload, _ = bundle("figure2")
        patched = bytearray(payload)
        struct.pack_into("<I", patched, len(MAGIC), ARTIFACT_FORMAT + 1)
        with pytest.raises(ArtifactError):
            ArtifactView.from_buffer(bytes(patched))

    @pytest.mark.parametrize("keep", [10, 100, 1000])
    def test_truncation_rejected(self, keep):
        _, _, payload, _ = bundle("figure2")
        with pytest.raises(ArtifactError):
            ArtifactView.from_buffer(payload[:keep])

    def test_version_mismatch_rejected(self, monkeypatch):
        import repro

        _, analyzed, _, _ = bundle("figure2")
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        stale = encode_artifact(analyzed, key="k")
        monkeypatch.undo()
        view = ArtifactView.from_buffer(stale)
        with pytest.raises(ArtifactError):
            view.validate("k")

    def test_key_mismatch_rejected(self):
        _, analyzed, _, _ = bundle("figure2")
        payload = encode_artifact(analyzed, key="expected")
        view = ArtifactView.from_buffer(payload)
        view.validate("expected")
        with pytest.raises(ArtifactError):
            view.validate("other")

    def test_empty_buffer_rejected(self):
        with pytest.raises(ArtifactError):
            ArtifactView.from_buffer(b"")


class TestDeterminism:
    """Canonical bytes are a pure function of (source, options, version).

    History: before this format existed, cross-process artifact
    determinism was faked by substituting a ``_NIL = ()`` sentinel for
    ``None`` contexts in every SDG-layer ``__hash__`` — ``hash(None)``
    is derived from its address on Python < 3.12, so set iteration
    order (and therefore pickled-SDG bytes) varied with ASLR between
    worker processes.  The flat encoder sorts nodes and edges into a
    canonical order instead, which makes the determinism guarantee
    *structural* and let the sentinel hack retire.  The subprocess test
    below is the regression guard: it re-encodes the same program under
    a different ``PYTHONHASHSEED`` in a fresh interpreter (fresh ASLR
    layout) and must produce identical canonical bytes.
    """

    def test_two_encodes_agree_in_process(self):
        _, analyzed, payload, view = bundle("figure2")
        again = encode_artifact(analyzed, key=view.key)
        assert canonical_bytes(again) == canonical_bytes(payload)

    def test_canonical_bytes_exclude_only_rich(self):
        _, analyzed, payload, view = bundle("figure2")
        lean = encode_artifact(analyzed, key=view.key, include_rich=False)
        assert canonical_bytes(lean) == canonical_bytes(payload)

    def test_canonical_bytes_stable_across_hash_seeds(self):
        source, _, payload, view = bundle("figure2")
        expected = hashlib.sha256(canonical_bytes(payload)).hexdigest()
        script = (
            "import hashlib, sys\n"
            "from repro import AnalyzeOptions, analyze\n"
            "from repro.artifact import canonical_bytes, content_key, encode_artifact\n"
            "from repro.suite.loader import load_source\n"
            "source = load_source('figure2')\n"
            "analyzed = analyze(source, 'figure2.mj')\n"
            "key = content_key(source, AnalyzeOptions())\n"
            "payload = encode_artifact(analyzed, key=key)\n"
            "print(hashlib.sha256(canonical_bytes(payload)).hexdigest())\n"
        )
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = "271828"
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [os.path.abspath("src"), env.get("PYTHONPATH", "")])
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert result.stdout.strip() == expected
