"""Shared fixtures: compiled figure programs and analysis bundles.

Everything heavy is session-scoped; the figure programs are tiny, so
the whole suite stays fast.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.pointsto import solve_points_to
from repro.frontend import compile_source
from repro.sdg.sdg import build_sdg
from repro.suite.loader import load_source

#: CI runs the server/fault suites a second time with these knobs set
#: (REPRO_TEST_EXECUTOR=process REPRO_TEST_WORKERS=2) so every drill
#: also exercises the process-pool executor; the default (tier-1) run
#: stays in thread mode.
TEST_EXECUTOR = os.environ.get("REPRO_TEST_EXECUTOR", "thread")
TEST_WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "0") or 0)


def make_server(cache=None, **kwargs):
    """A :class:`SliceServer` honoring the suite-wide executor knobs.

    Explicit ``executor``/``workers`` kwargs win; worker processes are
    spawned lazily, so thread-path tests cost nothing extra even when
    the knob selects the process executor.
    """
    from repro.server.daemon import SliceServer

    kwargs.setdefault("executor", TEST_EXECUTOR)
    if TEST_WORKERS:
        kwargs.setdefault("workers", TEST_WORKERS)
    return SliceServer(cache, **kwargs)


def compile_and_analyze(source: str, filename: str = "<test>", stdlib: bool = False):
    """Compile + points-to + direct SDG, for test bodies."""
    compiled = compile_source(source, filename, include_stdlib=stdlib)
    pts = solve_points_to(compiled.ir)
    sdg = build_sdg(compiled, pts, heap_mode="direct", include_control=True)
    return compiled, pts, sdg


@pytest.fixture(scope="session")
def figure1():
    source = load_source("figure1")
    compiled, pts, sdg = compile_and_analyze(source, "figure1.mj", stdlib=True)
    return source, compiled, pts, sdg


@pytest.fixture(scope="session")
def figure2():
    source = load_source("figure2")
    compiled, pts, sdg = compile_and_analyze(source, "figure2.mj", stdlib=False)
    return source, compiled, pts, sdg


@pytest.fixture(scope="session")
def figure4():
    source = load_source("figure4")
    compiled, pts, sdg = compile_and_analyze(source, "figure4.mj", stdlib=True)
    return source, compiled, pts, sdg


@pytest.fixture(scope="session")
def figure5():
    source = load_source("figure5")
    compiled, pts, sdg = compile_and_analyze(source, "figure5.mj", stdlib=False)
    return source, compiled, pts, sdg
