"""Hierarchical expansion tests (§4): aliasing, control, convergence."""

from __future__ import annotations

import pytest

from repro.ir import instructions as ins
from repro.lang.source import find_markers
from repro.slicing.expansion import (
    control_explainers,
    expand_once,
    expand_to_fixpoint,
    explain_aliasing,
    thin_closure,
    traditional_closure,
    ExpansionState,
)
from repro.slicing.thin import ThinSlicer


def tags(source: str) -> dict[str, int]:
    return find_markers(source)["tag"]


def instr_at(compiled, line: int, kind):
    for instr in compiled.instructions_at_line(line):
        if isinstance(instr, kind):
            return instr
    raise AssertionError(f"no {kind.__name__} at line {line}")


class TestAliasExplanation:
    """§4.1 on Figure 4: explaining why close() and isOpen() touch the
    same File."""

    def explanation(self, figure4):
        source, compiled, pts, sdg = figure4
        t = tags(source)
        store = instr_at(compiled, t["close"], ins.FieldStore)
        load = instr_at(compiled, t["isopen"], ins.FieldLoad)
        return source, t, explain_aliasing(compiled, sdg, pts, load, store)

    def test_common_objects_is_the_file(self, figure4):
        source, t, explanation = self.explanation(figure4)
        assert len(explanation.common_objects) == 1
        (obj,) = explanation.common_objects
        assert obj.class_name == "File"

    def test_explanation_shows_file_flow(self, figure4):
        source, t, explanation = self.explanation(figure4)
        lines = explanation.lines()
        for name in ("allocfile", "addfile", "getg", "geth", "closecall"):
            assert t[name] in lines, name

    def test_explanation_filters_unrelated_allocations(self, figure4):
        # The Vector allocation itself does not carry the File object
        # (the paper: "note line 16 is still omitted, as it does not
        # touch the File object").
        source, t, explanation = self.explanation(figure4)
        assert t["allocvec"] not in explanation.lines()

    def test_both_base_slices_nonempty(self, figure4):
        source, t, explanation = self.explanation(figure4)
        assert explanation.load_base_slice.order
        assert explanation.store_base_slice.order


class TestControlExplanation:
    def test_throw_is_controlled_by_open_test(self, figure4):
        source, compiled, pts, sdg = figure4
        t = tags(source)
        throw = instr_at(compiled, t["throw"], ins.Throw)
        explanation = control_explainers(sdg, throw)
        assert explanation.conditionals
        # The governing conditional is the '!open' branch on the seed line.
        assert t["seed"] in explanation.lines()

    def test_unconditional_statement_has_no_explainers(self, figure4):
        source, compiled, pts, sdg = figure4
        t = tags(source)
        alloc = instr_at(compiled, t["allocfile"], ins.New)
        explanation = control_explainers(sdg, alloc)
        assert explanation.conditionals == []

    def test_figure5_cast_controlled_by_op_test(self, figure5):
        source, compiled, pts, sdg = figure5
        t = tags(source)
        cast = instr_at(compiled, t["cast"], ins.Cast)
        explanation = control_explainers(sdg, cast)
        # The guard is the 'op == 1' branch, which lives on its if line.
        assert explanation.conditionals


class TestConvergence:
    """Expanding a thin slice repeatedly yields the traditional slice."""

    @pytest.mark.parametrize("fixture", ["figure1", "figure2", "figure4", "figure5"])
    def test_fixpoint_equals_traditional(self, fixture, request):
        source, compiled, pts, sdg = request.getfixturevalue(fixture)
        t = tags(source)
        seed_line = t.get("seed", t.get("cast"))
        seeds = ThinSlicer(compiled, sdg).seeds_at_line(seed_line)
        final = expand_to_fixpoint(sdg, seeds)
        expected = traditional_closure(sdg, seeds)
        assert final.nodes == expected

    def test_expansion_is_monotone(self, figure4):
        source, compiled, pts, sdg = figure4
        t = tags(source)
        seeds = ThinSlicer(compiled, sdg).seeds_at_line(t["seed"])
        state = ExpansionState(nodes=thin_closure(sdg, seeds))
        for _ in range(5):
            nxt = expand_once(sdg, state)
            assert state.nodes <= nxt.nodes
            state = nxt

    def test_first_round_adds_explainers(self, figure4):
        source, compiled, pts, sdg = figure4
        t = tags(source)
        seeds = ThinSlicer(compiled, sdg).seeds_at_line(t["seed"])
        initial = ExpansionState(nodes=thin_closure(sdg, seeds))
        once = expand_once(sdg, initial)
        assert once.frontier
        assert once.rounds == 1

    def test_thin_closure_smaller_than_traditional(self, figure1):
        source, compiled, pts, sdg = figure1
        t = tags(source)
        seeds = ThinSlicer(compiled, sdg).seeds_at_line(t["seed"])
        assert len(thin_closure(sdg, seeds)) < len(traditional_closure(sdg, seeds))
