"""Unit tests for the smaller supporting modules: source markers, the
IR printer, runtime values, the heap model, native signatures, errors,
and the frontend pipeline object."""

from __future__ import annotations

import pytest

from repro.analysis.heapmodel import (
    ARGS_ARRAY_OBJECT,
    AbstractObject,
    FieldKey,
    RetKey,
    STRING_OBJECT,
    VarKey,
    make_object,
)
from repro.frontend import compile_source
from repro.interp.values import (
    ArrayValue,
    ExecutionResult,
    ObjectValue,
    stringify,
    values_equal,
)
from repro.ir.printer import format_function, format_program
from repro.lang.errors import LexError, MJError, ParseError, TypeError_
from repro.lang.source import Position, SourceFile, find_markers, marker_line
from repro.lang.symbols import STRING_NATIVES
from repro.lang.types import ArrayType, BOOLEAN, ClassType, INT, STRING, array_of


class TestSource:
    def test_position_ordering_and_str(self):
        a = Position(1, 2, "f.mj")
        b = Position(2, 1, "f.mj")
        assert a < b
        assert str(a) == "f.mj:1:2"

    def test_source_file_line_text(self):
        src = SourceFile("x.mj", "one\ntwo\nthree")
        assert src.line_text(2) == "two"
        assert src.line_text(99) == ""
        assert src.line_text(0) == ""

    def test_find_markers_by_kind(self):
        text = "a //@tag:x\nb //@seed:y //@tag:z\n"
        markers = find_markers(text)
        assert markers["tag"] == {"x": 1, "z": 2}
        assert markers["seed"] == {"y": 2}

    def test_first_occurrence_wins(self):
        text = "a //@tag:x\nb //@tag:x\n"
        assert find_markers(text)["tag"]["x"] == 1

    def test_marker_line_missing_raises(self):
        with pytest.raises(KeyError, match="no //@tag:zzz"):
            marker_line("a\n", "tag", "zzz")


class TestErrors:
    def test_message_includes_position(self):
        err = MJError("boom", Position(3, 4, "f.mj"))
        assert "f.mj:3:4" in str(err)

    def test_message_without_position(self):
        assert str(MJError("boom")) == "boom"

    def test_hierarchy(self):
        for cls in (LexError, ParseError, TypeError_):
            assert issubclass(cls, MJError)


class TestTypes:
    def test_array_of_dimensions(self):
        assert array_of(INT, 2) == ArrayType(ArrayType(INT))

    def test_reference_predicates(self):
        assert ClassType("A").is_reference()
        assert ArrayType(INT).is_reference()
        assert not INT.is_reference()
        assert INT.is_primitive()
        assert str(ArrayType(STRING)) == "String[]"


class TestValues:
    def test_stringify(self):
        assert stringify(None) == "null"
        assert stringify(True) == "true"
        assert stringify(False) == "false"
        assert stringify(3) == "3"
        assert stringify("s") == "s"
        obj = ObjectValue("Foo", {})
        assert stringify(obj).startswith("Foo@")

    def test_values_equal_reference_identity(self):
        a = ObjectValue("A", {})
        b = ObjectValue("A", {})
        assert values_equal(a, a)
        assert not values_equal(a, b)

    def test_values_equal_int_vs_bool(self):
        assert not values_equal(1, True)
        assert not values_equal(0, False)

    def test_array_value_len(self):
        arr = ArrayValue([1, 2, 3])
        assert len(arr) == 3

    def test_execution_result_failed(self):
        assert not ExecutionResult([], None).failed
        assert ExecutionResult([], "E").failed
        assert ExecutionResult([], None, timed_out=True).failed

    def test_output_text(self):
        assert ExecutionResult(["a", "b"]).output_text() == "a\nb"


class TestHeapModel:
    def test_keys_hashable_and_distinct(self):
        obj = AbstractObject(1, "A", "object")
        assert VarKey("f", "x") != VarKey("f", "y")
        assert FieldKey(obj, "f") == FieldKey(obj, "f")
        assert RetKey("f") != RetKey("g")

    def test_str_renderings(self):
        obj = AbstractObject(1, "A", "object", label="Main:5")
        assert "A" in str(obj) and "Main:5" in str(obj)
        assert "::x" in str(VarKey("F.m", "x"))
        assert "ret(" in str(RetKey("F.m"))

    def test_special_objects(self):
        assert STRING_OBJECT.kind == "string"
        assert ARGS_ARRAY_OBJECT.kind == "array"

    def test_make_object_depth_cap(self):
        ctx = AbstractObject(1, "A", "object")
        for _ in range(5):
            ctx = make_object(2, "B", "object", ctx, max_depth=2)
        assert ctx.depth() <= 1  # context chains capped below max_depth


class TestNativeTable:
    def test_overloaded_arities_present(self):
        assert ("substring", 1) in STRING_NATIVES
        assert ("substring", 2) in STRING_NATIVES
        assert ("indexOf", 1) in STRING_NATIVES
        assert ("indexOf", 2) in STRING_NATIVES

    def test_signature_types(self):
        sig = STRING_NATIVES[("length", 0)]
        assert sig.return_type == INT
        sig = STRING_NATIVES[("concat", 1)]
        assert sig.param_types == (STRING,)
        assert sig.return_type == STRING

    def test_predicate_natives_return_boolean(self):
        for name in ("equals", "startsWith", "endsWith", "contains", "isEmpty"):
            arity = 0 if name == "isEmpty" else 1
            assert STRING_NATIVES[(name, arity)].return_type == BOOLEAN


class TestPrinter:
    SOURCE = (
        "class A { int f;\n"
        "  int m(int x) { if (x > 0) { f = x; } return f; } }"
    )

    def test_format_function_structure(self):
        compiled = compile_source(self.SOURCE)
        text = format_function(compiled.ir.functions["A.m"])
        assert text.startswith("function A.m(this, x)")
        assert "B0:" in text
        assert "return" in text

    def test_positions_flag(self):
        compiled = compile_source(self.SOURCE)
        text = format_function(compiled.ir.functions["A.m"], positions=True)
        assert "; line 2" in text

    def test_format_program_covers_all_functions(self):
        compiled = compile_source(self.SOURCE)
        text = format_program(compiled.ir)
        assert "function A.m" in text
        assert "function A.<init>" in text


class TestFrontendPipeline:
    def test_compiled_program_fields(self):
        compiled = compile_source("class A { static void main(String[] a) {} }")
        assert compiled.source.name == "<input>"
        assert compiled.table.has_class("A")
        assert "A.main" in compiled.dominators

    def test_include_stdlib_appends_classes(self):
        with_lib = compile_source("class Z {}", include_stdlib=True)
        without = compile_source("class Z {}", include_stdlib=False)
        assert with_lib.table.has_class("Vector")
        assert not without.table.has_class("Vector")
        # user line numbers are unchanged by the appended stdlib
        assert with_lib.ast.classes[0].position.line == 1

    def test_analyze_wrapper(self):
        from repro import analyze

        analyzed = analyze(
            "class Main { static void main(String[] a) { print(1); } }",
            include_stdlib=False,
        )
        result = analyzed.run()
        assert result.output == ["1"]
        assert analyzed.thin_slicer is not None
        assert analyzed.traditional_slicer is not None


class TestSliceResultViews:
    def test_source_view_context_lines(self, figure2):
        source, compiled, pts, sdg = figure2
        from repro.lang.source import marker_line
        from repro.slicing.thin import ThinSlicer

        seed = marker_line(source, "tag", "seed")
        result = ThinSlicer(compiled, sdg).slice_from_line(seed)
        plain = result.source_view()
        extended = result.source_view(context=1)
        assert len(extended.splitlines()) > len(plain.splitlines())
        # Slice lines are starred; context lines are not.
        assert any(line.startswith("*") for line in extended.splitlines())
        assert any(line.startswith(" ") for line in extended.splitlines())
