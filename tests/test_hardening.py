"""Input hardening: recursion sentinels, memory limits, quarantine,
circuit breaker, fuzz oracle, regression corpus, store tmp sweep.

The acceptance drills for the hardening work: hostile inputs produce
structured errors (never uncaught exceptions or hangs), inputs that
kill worker processes get quarantined and answered fast, pool-wide
crash storms degrade process→thread, and the fuzz subsystem that
guards all of this is itself deterministic.
"""

from __future__ import annotations

import json
import os
import socket
import time
from pathlib import Path

import pytest

from repro import AnalyzeOptions, analyze
from repro.lang.errors import MJError, ParseError
from repro.resources import ResourceExceeded, process_rss_mb
from repro.server.cache import AnalysisCache
from repro.server.daemon import SliceServer, start_tcp_server
from repro.server.faults import FaultPlan
from repro.server.quarantine import CircuitBreaker, Quarantine
from repro.server.store import DiskStore
from repro.suite.loader import load_source
from tests.conftest import make_server

CORPUS_DIR = Path(__file__).parent / "corpus"

MAIN_WRAP = "class Main {{\n  static void main(String[] args) {{\n{}\n  }}\n}}\n"


def rpc(server: SliceServer, method: str, request_id=1, **params):
    line = json.dumps({"id": request_id, "method": method, "params": params})
    return json.loads(server.handle_line(line))


# ----------------------------------------------------------------------
# Recursion sentinels
# ----------------------------------------------------------------------


class TestRecursionSentinels:
    def test_deep_paren_nesting_is_parse_error(self):
        source = MAIN_WRAP.format(
            "    int x = " + "(" * 300 + "1" + ")" * 300 + ";"
        )
        with pytest.raises(ParseError, match="nesting exceeds"):
            analyze(source)

    def test_deep_statement_nesting_is_parse_error(self):
        body = "".join("if (true) { " for _ in range(200))
        body += "print(1);" + " }" * 200
        with pytest.raises(ParseError, match="nesting exceeds"):
            analyze(MAIN_WRAP.format("    " + body))

    def test_unary_chain_is_parse_error(self):
        source = MAIN_WRAP.format(
            "    boolean b = " + "!" * 400 + "true;\n    print(1);"
        )
        with pytest.raises(ParseError, match="unary operator chain"):
            analyze(source)

    def test_wide_binary_chain_is_structured_error(self):
        # Parses fine (iterative) but the left-deep AST would blow the
        # recursive typechecker; the frontend converts RecursionError
        # into a structured MJError.
        chain = " + ".join(["x"] * 4000)
        source = MAIN_WRAP.format(f"    int x = 1;\n    int y = {chain};")
        with pytest.raises(MJError, match="recursion limits"):
            analyze(source)

    def test_reasonable_nesting_still_parses(self):
        source = MAIN_WRAP.format(
            "    int x = " + "(" * 30 + "1" + ")" * 30 + ";\n    print(x);"
        )
        assert analyze(source).sdg is not None


# ----------------------------------------------------------------------
# Resource sentinel plumbing
# ----------------------------------------------------------------------


class TestResourceSentinel:
    def test_process_rss_mb_reads_self(self):
        rss = process_rss_mb(os.getpid())
        if rss is None:
            pytest.skip("/proc not available on this platform")
        assert 1.0 < rss < 100_000.0

    def test_memory_limit_excluded_from_cache_token(self):
        capped = AnalyzeOptions(memory_limit_mb=64.0)
        uncapped = AnalyzeOptions()
        assert capped.cache_token() == uncapped.cache_token()

    def test_analyze_strips_memory_limit_from_artifact(self):
        analyzed = analyze(
            load_source("figure2"),
            "figure2.mj",
            options=AnalyzeOptions(memory_limit_mb=4096.0),
        )
        assert analyzed.options.memory_limit_mb is None

    def test_resource_exceeded_is_not_mj_error(self):
        exc = ResourceExceeded("memory", "over", limit_mb=1, observed_mb=2)
        assert not isinstance(exc, MJError)
        assert exc.limit_mb == 1 and exc.observed_mb == 2


# ----------------------------------------------------------------------
# Quarantine + circuit breaker units
# ----------------------------------------------------------------------


class TestQuarantineUnit:
    def test_quarantines_after_threshold(self):
        q = Quarantine(threshold=3)
        assert q.check("fp") is None
        assert not q.record_failure("fp", "WorkerCrashed", "boom")
        assert not q.record_failure("fp", "WorkerCrashed", "boom")
        assert q.record_failure("fp", "WorkerCrashed", "boom")
        message = q.check("fp")
        assert message is not None and "3 worker-killing" in message
        stats = q.stats()
        assert stats["quarantined"] == 1
        assert stats["rejected_total"] == 1

    def test_capacity_is_bounded_lru(self):
        q = Quarantine(threshold=1, capacity=2)
        q.record_failure("a", "WorkerCrashed", "x")
        q.record_failure("b", "WorkerCrashed", "x")
        q.record_failure("c", "WorkerCrashed", "x")  # evicts "a"
        assert q.stats()["size"] == 2
        assert q.check("a") is None  # evicted: strikes forgotten
        assert q.check("b") is not None

    def test_distinct_fingerprints_do_not_share_strikes(self):
        q = Quarantine(threshold=2)
        q.record_failure("a", "WorkerCrashed", "x")
        q.record_failure("b", "WorkerCrashed", "x")
        assert q.check("a") is None and q.check("b") is None


class TestCircuitBreakerUnit:
    def test_trips_after_threshold_within_window(self):
        clock = [0.0]
        b = CircuitBreaker(threshold=3, window_s=10, cooldown_s=60,
                           clock=lambda: clock[0])
        assert b.allow_process()
        b.record_crash()
        b.record_crash()
        assert b.state() == "closed"
        assert b.record_crash()  # third within the window: open
        assert b.state() == "open"
        assert not b.allow_process()
        assert b.stats()["trips_total"] == 1

    def test_old_crashes_age_out_of_window(self):
        clock = [0.0]
        b = CircuitBreaker(threshold=2, window_s=5, cooldown_s=60,
                           clock=lambda: clock[0])
        b.record_crash()
        clock[0] = 10.0  # first crash is outside the window now
        assert not b.record_crash()
        assert b.state() == "closed"

    def test_half_open_probe_success_closes(self):
        clock = [0.0]
        b = CircuitBreaker(threshold=1, window_s=10, cooldown_s=30,
                           clock=lambda: clock[0])
        b.record_crash()
        assert not b.allow_process()
        clock[0] = 31.0
        assert b.state() == "half_open"
        assert b.allow_process()  # the probe
        b.record_success()
        assert b.state() == "closed"

    def test_half_open_probe_crash_reopens(self):
        clock = [0.0]
        b = CircuitBreaker(threshold=1, window_s=10, cooldown_s=30,
                           clock=lambda: clock[0])
        b.record_crash()
        clock[0] = 31.0
        assert b.allow_process()
        b.record_crash()  # the probe dies
        assert not b.allow_process()
        assert b.stats()["trips_total"] == 2


# ----------------------------------------------------------------------
# Daemon integration: poison quarantine, breaker degradation, memory
# ----------------------------------------------------------------------


class TestDaemonQuarantine:
    def test_health_reports_quarantine_and_breaker(self):
        server = make_server(AnalysisCache())
        try:
            health = rpc(server, "health")["result"]
            assert health["quarantine"]["size"] == 0
            assert health["breaker"]["state"] == "closed"
        finally:
            server.close()

    def test_poisoned_fingerprint_is_quarantined_fast(self):
        # The ISSUE acceptance drill: an input that crashes its worker
        # three times is answered with PoisonInput in under 100 ms —
        # no fourth respawn.
        plan = FaultPlan(worker_process_crashes=3)
        server = SliceServer(
            AnalysisCache(),
            workers=2,
            fault_plan=plan,
            executor="process",
            quarantine=Quarantine(threshold=3),
        )
        server.prestart()
        try:
            for attempt in range(3):
                response = rpc(server, "slice", program="figure2", line=8)
                assert response["error"]["type"] == "WorkerCrashed"
            start = time.perf_counter()
            response = rpc(server, "slice", program="figure2", line=8)
            elapsed_ms = (time.perf_counter() - start) * 1000
            assert response["error"]["type"] == "PoisonInput"
            assert "quarantined" in response["error"]["message"]
            assert elapsed_ms < 100
            health = rpc(server, "health")["result"]
            assert health["quarantine"]["quarantined"] == 1
            assert health["quarantine"]["rejected_total"] >= 1
            # Other inputs are unaffected.
            assert rpc(server, "slice", program="figure1", line=8)["ok"]
        finally:
            server.close()

    def test_breaker_degrades_process_to_thread(self):
        plan = FaultPlan(worker_process_crashes=2)
        server = SliceServer(
            AnalysisCache(),
            workers=2,
            fault_plan=plan,
            executor="process",
            quarantine=Quarantine(threshold=100),  # stay out of the way
            breaker=CircuitBreaker(threshold=2, window_s=60, cooldown_s=600),
        )
        server.prestart()
        try:
            # Two different inputs crash their workers: pool-level storm.
            assert (
                rpc(server, "slice", program="figure2", line=8)["error"]["type"]
                == "WorkerCrashed"
            )
            assert (
                rpc(server, "slice", program="figure1", line=8)["error"]["type"]
                == "WorkerCrashed"
            )
            health = rpc(server, "health")["result"]
            assert health["breaker"]["state"] == "open"
            # The breaker is open: the next cold analysis runs on the
            # request thread instead of a worker process — and succeeds
            # even though the crash dial is still armed.
            plan.worker_process_crashes = 5
            response = rpc(server, "slice", program="figure4", line=8)
            assert response["ok"], response
            assert plan.worker_process_crashes == 5  # never consulted
        finally:
            server.close()

    def test_memory_limit_surfaces_resource_exceeded(self):
        plan = FaultPlan(worker_alloc_mb=700.0)
        server = SliceServer(
            AnalysisCache(),
            workers=1,
            fault_plan=plan,
            executor="process",
            memory_limit_mb=250.0,
        )
        server.prestart()
        try:
            response = rpc(server, "slice", program="figure2", line=8)
            assert response["error"]["type"] == "ResourceExceeded"
            assert "memory" in response["error"]["message"]
            health = rpc(server, "health")["result"]
            # One strike recorded, not quarantined yet (threshold 3).
            assert health["quarantine"]["size"] == 1
            assert health["quarantine"]["quarantined"] == 0
            assert "memory_kills" in health["pool"]
            assert "worker_peak_rss_mb" in health["pool"]
            assert health["memory_limit_mb"] == 250.0
            # With the ballast dial cleared the same input analyzes fine.
            plan.worker_alloc_mb = 0.0
            assert rpc(server, "slice", program="figure2", line=8)["ok"]
        finally:
            server.close()


# ----------------------------------------------------------------------
# TCP framing: oversized line must not poison the connection
# ----------------------------------------------------------------------


class TestTcpOversizeRecovery:
    def test_oversized_line_recovers_framing_on_same_connection(
        self, monkeypatch
    ):
        import repro.server.daemon as daemon_mod

        monkeypatch.setattr(daemon_mod, "MAX_LINE_BYTES", 1024)
        server = make_server(AnalysisCache())
        tcp_server, _thread = start_tcp_server(server)
        host, port = tcp_server.server_address[:2]
        try:
            sock = socket.create_connection((host, port), timeout=5)
            reader = sock.makefile("r", encoding="utf-8")
            ping = json.dumps({"id": 2, "method": "ping", "params": {}})
            sock.sendall(b"x" * 8192 + b"\n" + ping.encode() + b"\n")
            first = json.loads(reader.readline())
            assert first["ok"] is False
            assert first["error"]["type"] == "Protocol"
            # Same connection, next request: framing recovered.
            second = json.loads(reader.readline())
            assert second["ok"] is True
            assert second["result"]["pong"] is True
            sock.close()
        finally:
            tcp_server.shutdown()
            tcp_server.server_close()
            server.close()


# ----------------------------------------------------------------------
# Disk store: orphaned temp files
# ----------------------------------------------------------------------


class TestStoreTmpSweep:
    def _plant_tmp(self, root: Path, name: str, age_s: float) -> Path:
        bucket = root / "ab"
        bucket.mkdir(parents=True, exist_ok=True)
        tmp = bucket / name
        tmp.write_bytes(b"orphan")
        stamp = time.time() - age_s
        os.utime(tmp, (stamp, stamp))
        return tmp

    def test_open_sweeps_stale_tmp_files(self, tmp_path):
        stale = self._plant_tmp(tmp_path, "abcd.tmp.12345", age_s=3600)
        store = DiskStore(tmp_path)
        assert not stale.exists()
        assert store.stats.tmp_swept == 1
        assert store.stats.as_dict()["tmp_swept"] == 1

    def test_young_tmp_files_are_spared(self, tmp_path):
        young = self._plant_tmp(tmp_path, "abcd.tmp.12345", age_s=1)
        store = DiskStore(tmp_path)
        assert young.exists()
        assert store.stats.tmp_swept == 0

    def test_prune_sweeps_tmp_files(self, tmp_path):
        store = DiskStore(tmp_path)
        stale = self._plant_tmp(tmp_path, "ef01.tmp.999", age_s=3600)
        store.prune(10**9)
        assert not stale.exists()
        assert store.stats.tmp_swept == 1

    def test_successful_save_leaves_no_tmp(self, tmp_path):
        store = DiskStore(tmp_path)
        analyzed = analyze(load_source("figure2"), "figure2.mj")
        store.save("ab" + "0" * 62, analyzed)
        assert list(tmp_path.glob("*/*.tmp.*")) == []
        assert store.load("ab" + "0" * 62) is not None


# ----------------------------------------------------------------------
# Fuzz subsystem
# ----------------------------------------------------------------------


class TestFuzzGrammar:
    def test_generation_is_deterministic(self):
        from repro.fuzz import generate_program

        assert generate_program(42) == generate_program(42)
        assert generate_program(42) != generate_program(43)

    def test_generated_programs_analyze(self):
        from repro.fuzz import generate_program

        for seed in range(5):
            analyzed = analyze(generate_program(seed), f"fuzz-{seed}.mj")
            assert analyzed.thin_slicer.slice_from_line(5) is not None


class TestFuzzMutate:
    def test_mutation_is_deterministic(self):
        import random

        from repro.fuzz import mutate_source

        source = load_source("figure2")
        first = mutate_source(source, random.Random(7))
        second = mutate_source(source, random.Random(7))
        assert first == second

    def test_mutated_corpus_satisfies_oracle(self):
        import random

        from repro.fuzz import check_source, mutate_source

        source = load_source("figure2")
        for seed in range(10):
            mutated = mutate_source(source, random.Random(seed))
            result = check_source(mutated, budget_s=5.0)
            assert not result.failed, (seed, result.signature)


class TestFuzzOracle:
    def test_ok_verdict(self):
        from repro.fuzz import check_source

        result = check_source(load_source("figure2"), budget_s=10.0)
        assert result.verdict == "ok" and not result.failed

    def test_structured_error_verdict(self):
        from repro.fuzz import check_source

        result = check_source("class {", budget_s=10.0)
        assert result.verdict == "error"
        assert result.error_type == "ParseError"

    def test_uncaught_exception_is_a_crash(self, monkeypatch):
        import repro.fuzz.oracle as oracle_mod

        def explode(*args, **kwargs):
            raise ValueError("pipeline bug")

        monkeypatch.setattr(oracle_mod, "analyze", explode)
        result = oracle_mod.check_source("class Main {}", budget_s=10.0)
        assert result.verdict == "crash" and result.failed
        assert result.error_type == "ValueError"
        assert "pipeline bug" in result.traceback

    def test_blown_budget_is_a_hang(self, monkeypatch):
        import repro.fuzz.oracle as oracle_mod

        def stall(*args, **kwargs):
            time.sleep(1.5)
            raise MJError("eventually gave up")

        monkeypatch.setattr(oracle_mod, "analyze", stall)
        result = oracle_mod.check_source("class Main {}", budget_s=0.1)
        assert result.verdict == "hang" and result.failed
        assert result.signature == "hang"


class TestFuzzMinimize:
    def test_shrinks_to_failing_core(self):
        from repro.fuzz import minimize_source

        source = "\n".join(f"line {i}" for i in range(40)) + "\nMAGIC\nmore"
        result = minimize_source(source, lambda s: "MAGIC" in s)
        assert result == "MAGIC"

    def test_respects_check_cap(self):
        from repro.fuzz import minimize_source

        calls = [0]

        def probe(candidate: str) -> bool:
            calls[0] += 1
            return "MAGIC" in candidate

        source = "\n".join(f"line {i}" for i in range(100)) + "\nMAGIC"
        minimize_source(source, probe, max_checks=10)
        assert calls[0] <= 10


class TestFuzzCampaign:
    def test_bounded_campaign_holds_the_contract(self, tmp_path):
        from repro.fuzz import run_campaign

        report = run_campaign(
            budget_s=300.0,
            seed=1,
            crash_dir=tmp_path,
            max_inputs=16,
            input_budget_s=5.0,
        )
        assert report.executed == 16
        assert (
            report.generated + report.mutated + report.edit_sessions == 16
        )
        assert report.edit_sessions >= 1  # the warm-edit differential ran
        assert report.ok + report.structured_errors == 16
        assert not report.failed
        assert list(tmp_path.iterdir()) == []

    def test_campaign_records_and_minimizes_crashes(
        self, tmp_path, monkeypatch
    ):
        import repro.fuzz.runner as runner_mod

        real_check = runner_mod.check_source

        def tripwire(source, **kwargs):
            if "class C0" in source:
                from repro.fuzz.oracle import OracleResult

                return OracleResult(
                    "crash", "ValueError", "planted bug", 0.0, "tb"
                )
            return real_check(source, **kwargs)

        monkeypatch.setattr(runner_mod, "check_source", tripwire)
        report = runner_mod.run_campaign(
            budget_s=300.0,
            seed=0,
            crash_dir=tmp_path,
            max_inputs=8,
            minimize_checks=30,
        )
        assert report.failed
        assert len(report.crashes) == 1  # deduplicated by signature
        crash = report.crashes[0]
        assert crash.verdict == "crash"
        assert Path(crash.path).exists()
        assert "class C0" in Path(crash.path).read_text()
        notes = Path(crash.path).with_suffix(".txt").read_text()
        assert "planted bug" in notes


class TestRegressionCorpus:
    def test_corpus_exists(self):
        assert len(list(CORPUS_DIR.glob("*.mj"))) >= 5

    @pytest.mark.parametrize(
        "path",
        sorted(CORPUS_DIR.glob("*.mj")),
        ids=lambda p: p.name,
    )
    def test_corpus_file_satisfies_oracle(self, path):
        from repro.fuzz import check_source

        result = check_source(
            path.read_text(encoding="utf-8"),
            budget_s=10.0,
            filename=path.name,
        )
        assert not result.failed, result.signature
        # Every checked-in crasher was a *failing* input once; after
        # hardening each must be a structured error, not a silent pass.
        assert result.verdict == "error"
