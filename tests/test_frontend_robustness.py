"""Robustness: malformed input must fail with diagnostics, never crash.

The frontend's contract is that *any* input string produces either a
checked program or an :class:`MJError` subclass with a position — no
``IndexError``/``AttributeError``/hangs.  Hypothesis throws random and
adversarial text at each stage.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.frontend import compile_source
from repro.lang.errors import MJError
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_program


def _attempt(source: str) -> None:
    try:
        compile_source(source)
    except MJError as err:
        assert str(err)  # has a rendered message


class TestAdversarialInputs:
    @pytest.mark.parametrize(
        "source",
        [
            "class",
            "class A",
            "class A {",
            "class A {}}",
            "class A { int }",
            "class A { void m( }",
            "class A { void m() { if } }",
            "class A { void m() { x = ; } }",
            "class A { void m() { return 1 + ; } }",
            "class A { void m() { ((((( } }",
            "class A extends A {}",
            "class A { A() { super(); super(); } }",
            'class A { void m() { "unterminated } }',
            "class A { void m() { int int = 3; } }",
            "class A { void m() { for (;;;;) {} } }",
            "class 9A {}",
            "int x = 5;",  # top-level statement
            "class A { void m() { new int(); } }",
            "class A { void m() { this.this = 1; } }",
        ],
    )
    def test_bad_programs_raise_mj_errors(self, source):
        with pytest.raises(MJError):
            compile_source(source)


@settings(max_examples=200, deadline=None)
@given(st.text(max_size=80))
def test_lexer_total_on_arbitrary_text(text):
    try:
        tokens = tokenize(text)
        assert tokens[-1].kind.name == "EOF"
    except MJError:
        pass


@settings(max_examples=200, deadline=None)
@given(st.text(alphabet=st.sampled_from("class{}();= intvoidA b10+*"), max_size=60))
def test_parser_total_on_token_soup(text):
    try:
        parse_program(text)
    except MJError:
        pass


@settings(max_examples=100, deadline=None)
@given(st.text(alphabet=st.sampled_from("classext{}();=intvoidABmxy 10+-*/"), max_size=100))
def test_full_pipeline_total(text):
    _attempt(text)


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 30))
def test_deeply_nested_expressions(depth):
    expr = "1" + (" + (1" * depth) + ")" * depth
    source = f"class A {{ static int m() {{ return {expr}; }} }}"
    compiled = compile_source(source)
    assert "A.m" in compiled.ir.functions


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 40))
def test_deeply_nested_blocks(depth):
    body = "{" * depth + " int x = 1; " + "}" * depth
    source = f"class A {{ static void m() {{ {body} }} }}"
    compiled = compile_source(source)
    assert "A.m" in compiled.ir.functions
