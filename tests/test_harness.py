"""Experiment-harness tests: the paper's qualitative claims must hold.

These are the repo's guardrails for Tables 2 and 3: thin never inspects
more than traditional, desired statements are found, the aggregate
ratios are multi-fold, and the NoObjSens ablation degrades container-
heavy tasks.
"""

from __future__ import annotations

import pytest

from repro.slicing.inspection import compare, count_inspected
from repro.suite.bugs import BUGS, bugs_for_table2, excluded_bugs, resolve_task
from repro.suite.casts import all_casts
from repro.suite.harness import (
    SUITE_PROGRAMS,
    analyze_source,
    measure_bug,
    measure_cast,
    program_stats,
)


@pytest.fixture(scope="module")
def table2():
    return {bug.bug_id: measure_bug(bug) for bug in bugs_for_table2()}


@pytest.fixture(scope="module")
def table3():
    return {cast.cast_id: measure_cast(cast) for cast in all_casts()}


class TestTable2Claims:
    def test_every_bug_found_by_both_techniques(self, table2):
        for bug_id, m in table2.items():
            assert m.thin.found_all, bug_id
            assert m.traditional.found_all, bug_id

    def test_thin_never_worse_than_traditional(self, table2):
        for bug_id, m in table2.items():
            if BUGS[bug_id].needs_alias_expansion:
                # Aliasing rows run with blanket one/two-level expansion
                # (the §6.2 nanoxml-5 configuration); over our deeper
                # HashMap chains that lands near break-even rather than
                # strictly below traditional.
                assert m.thin.inspected <= m.traditional.inspected * 1.25, bug_id
            else:
                assert m.thin.inspected <= m.traditional.inspected, bug_id

    def test_aggregate_ratio_is_multifold(self, table2):
        total_thin = sum(m.thin.inspected for m in table2.values())
        total_trad = sum(m.traditional.inspected for m in table2.values())
        # The paper reports 3.3x on its debugging tasks; on our smaller
        # programs the aggregate must still be well above 1.
        assert total_trad / total_thin > 1.3

    def test_trivial_bugs_cost_one(self, table2):
        # jtopas-1 / minixml-1 crash at the buggy statement itself.
        assert table2["jtopas-1"].thin.inspected == 1
        assert table2["jtopas-1"].traditional.inspected == 1
        assert table2["minixml-1"].thin.inspected == 1

    def test_container_bug_has_large_ratio(self, table2):
        # minixml-2 is the nanoxml-style bug flowing through containers.
        assert table2["minixml-2"].ratio > 2.0

    def test_thin_counts_are_manageable(self, table2):
        # The paper: 11.5 statements on average (1..35) for thin.
        for bug_id, m in table2.items():
            assert m.thin.inspected <= 120, bug_id

    def test_noobjsens_never_better(self, table2):
        for bug_id, m in table2.items():
            assert m.thin_noobj.inspected >= m.thin.inspected or not (
                m.thin_noobj.found_all
            ), bug_id

    def test_noobjsens_degrades_some_container_task(self, table2):
        degraded = [
            bug_id
            for bug_id, m in table2.items()
            if m.thin_noobj.inspected > m.thin.inspected
            or m.trad_noobj.inspected > m.traditional.inspected
        ]
        assert degraded, "object sensitivity made no difference anywhere"

    def test_alias_expansion_bug_found_with_expansion(self, table2):
        """nanoxml-5 pattern: a pure thin slice cannot reach the bug; the
        aliasing-expansion configuration finds it at a cost comparable
        to the traditional slicer (the paper's Vector-based scenario
        beat traditional outright; our HashMap interposes one more
        dereference level, landing near break-even)."""
        m = table2["minixml-5"]
        assert m.thin.found_all
        assert m.thin.inspected <= m.traditional.inspected * 1.25
        # Without expansion the bug is unreachable through producers.
        bug = BUGS["minixml-5"]
        bundle = analyze_source(bug.apply(), "m5-plain.mj", True)
        task = resolve_task(bug, bundle.compiled.source.text)
        plain = count_inspected(
            bundle.thin_slicer(0), task.seed_lines(), set(task.desired)
        )
        assert not plain.found_all

    def test_control_counts_match_registry(self, table2):
        for bug_id, m in table2.items():
            assert m.n_control == BUGS[bug_id].n_control

    def test_ant3_pattern_has_many_control_deps(self, table2):
        assert table2["minibuild-3"].n_control == 12


class TestExcludedBugs:
    def test_slicing_unhelpful_for_buried_hash_bugs(self):
        """For the xmlsec-internals bugs thin slicing buys nothing: the
        slice is (nearly) the whole hash pipeline either way — the
        paper's reason for excluding these rows from Table 2."""
        for bug in excluded_bugs():
            bundle = analyze_source(bug.apply(), f"{bug.bug_id}.mj", True)
            task = resolve_task(bug, bundle.compiled.source.text)
            thin = count_inspected(
                bundle.thin_slicer(), task.seed_lines(), set(task.desired)
            )
            trad = count_inspected(
                bundle.traditional_slicer(), task.seed_lines(), set(task.desired)
            )
            # Thin offers no meaningful advantage on these tasks...
            assert trad.inspected <= thin.inspected * 2, bug.bug_id
            # ...because the thin slice already contains almost the whole
            # pipeline that the traditional slice contains.
            thin_lines = bundle.thin_slicer().slice_from_lines(
                task.seed_lines()
            ).lines
            trad_lines = bundle.traditional_slicer().slice_from_lines(
                task.seed_lines()
            ).lines
            assert len(thin_lines) >= 0.8 * len(trad_lines), bug.bug_id


class TestTable3Claims:
    def test_every_cast_explained_by_both(self, table3):
        for cast_id, m in table3.items():
            assert m.thin.found_all, cast_id
            assert m.traditional.found_all, cast_id

    def test_thin_never_worse(self, table3):
        for cast_id, m in table3.items():
            assert m.thin.inspected <= m.traditional.inspected, cast_id

    def test_aggregate_ratio_exceeds_table2(self, table3):
        total_thin = sum(m.thin.inspected for m in table3.values())
        total_trad = sum(m.traditional.inspected for m in table3.values())
        assert total_trad / total_thin > 1.5

    def test_most_casts_are_tough(self, table3):
        tough = [m for m in table3.values() if not m.verified_by_pointer_analysis]
        assert len(tough) >= len(table3) // 2

    def test_container_casts_degrade_without_objsens(self, table3):
        parsegen = [m for cid, m in table3.items() if cid.startswith("parsegen")]
        degraded = [
            m
            for m in parsegen
            if m.thin_noobj.inspected > m.thin.inspected
            or m.trad_noobj.inspected > m.traditional.inspected
        ]
        # The jack-style pattern: container-mediated casts suffer most.
        assert len(degraded) >= 3

    def test_thin_counts_manageable(self, table3):
        # Paper: thin average 29.3, range 6-65.
        for cast_id, m in table3.items():
            assert m.thin.inspected <= 70, cast_id


class TestTable1Stats:
    @pytest.mark.parametrize("name", SUITE_PROGRAMS)
    def test_stats_are_positive(self, name):
        stats = program_stats(name)
        assert stats.classes > 0
        assert stats.methods_reachable > 0
        assert stats.call_graph_nodes >= stats.methods_reachable
        assert stats.sdg_statements > 0
        assert stats.sdg_edges > 0

    def test_cloning_inflates_call_graph_nodes(self):
        sens = program_stats("parsegen", object_sensitive=True)
        insens = program_stats("parsegen", object_sensitive=False)
        assert sens.call_graph_nodes > insens.call_graph_nodes
        assert sens.methods_reachable == insens.methods_reachable


class TestInspectionMetric:
    def test_count_starts_at_seed(self, figure2):
        source, compiled, pts, sdg = figure2
        from repro.lang.source import find_markers
        from repro.slicing.thin import ThinSlicer

        t = find_markers(source)["tag"]
        slicer = ThinSlicer(compiled, sdg)
        result = count_inspected(slicer, t["seed"], {t["seed"]})
        assert result.inspected == 1
        assert result.found_all

    def test_missing_desired_reports_not_found(self, figure2):
        source, compiled, pts, sdg = figure2
        from repro.lang.source import find_markers
        from repro.slicing.thin import ThinSlicer

        t = find_markers(source)["tag"]
        slicer = ThinSlicer(compiled, sdg)
        # copyz is an explainer: never reached by a thin slice.
        result = count_inspected(slicer, t["seed"], {t["copyz"]})
        assert not result.found_all
        assert result.inspected == result.total_slice_lines

    def test_control_allowance_added(self, figure2):
        source, compiled, pts, sdg = figure2
        from repro.lang.source import find_markers
        from repro.slicing.thin import ThinSlicer

        t = find_markers(source)["tag"]
        slicer = ThinSlicer(compiled, sdg)
        base = count_inspected(slicer, t["seed"], {t["seed"]})
        plus = count_inspected(slicer, t["seed"], {t["seed"]}, control_allowance=3)
        assert plus.inspected == base.inspected + 3

    def test_compare_produces_ratio(self, figure2):
        source, compiled, pts, sdg = figure2
        from repro.lang.source import find_markers
        from repro.slicing.thin import ThinSlicer
        from repro.slicing.traditional import TraditionalSlicer

        t = find_markers(source)["tag"]
        comparison = compare(
            "fig2",
            ThinSlicer(compiled, sdg),
            TraditionalSlicer(compiled, sdg),
            t["seed"],
            {t["allocB"]},
        )
        assert comparison.ratio >= 1.0
        assert comparison.thin.found_all
