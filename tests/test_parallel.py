"""Unit drills for :mod:`repro.parallel` — the spawn-safe process pool.

Task functions live at module level so the spawn children can unpickle
them by import (``tests.test_parallel``).  One warm pool is shared by
the whole module: spawning a worker costs ~0.5 s, so every test that
can reuse a healthy worker does.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.budget import Budget, BudgetExceeded
from repro.parallel import (
    CRASH_EXIT_CODE,
    ProcessPool,
    WorkerCrashed,
    WorkerError,
    analyze_artifact,
    artifact_payload,
    load_artifact,
)

# ----------------------------------------------------------------------
# Task functions (must be importable from the spawn child)
# ----------------------------------------------------------------------


def echo(value):
    return value


def worker_pid():
    return os.getpid()


def hash_seed():
    return os.environ.get("PYTHONHASHSEED")


def boom(message):
    raise ValueError(message)


def die():
    os._exit(CRASH_EXIT_CODE)


def stall(seconds):
    # Non-cooperative: only a parent-side kill ends this early.
    time.sleep(seconds)
    return "slept"


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def pool():
    with ProcessPool(workers=2) as shared:
        yield shared


# ----------------------------------------------------------------------
# Drills
# ----------------------------------------------------------------------


class TestDispatch:
    def test_roundtrip(self, pool):
        assert pool.run(echo, {"nested": [1, 2, 3]}) == {"nested": [1, 2, 3]}

    def test_workers_are_separate_processes(self, pool):
        assert pool.run(worker_pid) != os.getpid()

    def test_child_env_is_pinned(self, pool):
        # Deterministic artifact bytes depend on this (set iteration
        # order over str keys follows the hash seed).
        assert pool.run(hash_seed) == "0"

    def test_workers_stay_warm(self, pool):
        pids = {pool.run(worker_pid) for _ in range(6)}
        # Sequential tasks reuse idle workers instead of respawning.
        assert len(pids) <= 2
        assert pool.stats()["tasks_total"] >= 6

    def test_task_error_is_transported(self, pool):
        with pytest.raises(WorkerError) as err:
            pool.run(boom, "injected message")
        assert err.value.error_type == "ValueError"
        assert err.value.message == "injected message"
        assert "boom" in err.value.traceback_text
        assert not isinstance(err.value, WorkerCrashed)

    def test_worker_survives_a_task_error(self, pool):
        before = pool.run(worker_pid)
        with pytest.raises(WorkerError):
            pool.run(boom, "still healthy afterwards")
        # An exception is a *task* failure: the worker keeps serving.
        pids = {pool.run(worker_pid) for _ in range(4)}
        assert before in pids


class TestCrashRecovery:
    def test_crash_surfaces_and_pool_respawns(self):
        with ProcessPool(workers=1) as solo:
            solo.prestart(wait=True)
            with pytest.raises(WorkerCrashed) as err:
                solo.run(die)
            assert str(CRASH_EXIT_CODE) in str(err.value)
            # The replacement worker answers the next task.
            assert solo.run(echo, "revived") == "revived"
            stats = solo.stats()
            assert stats["crashes"] == 1
            assert stats["respawns"] == 1
            assert stats["spawned_total"] == 2

    def test_deadline_kills_the_worker(self):
        with ProcessPool(workers=1) as solo:
            solo.prestart(wait=True)
            doomed = Budget.from_timeout(0.3)
            start = time.monotonic()
            with pytest.raises(BudgetExceeded) as err:
                solo.run(stall, 30.0, budget=doomed)
            elapsed = time.monotonic() - start
            assert err.value.reason == "deadline"
            # The stall is non-cooperative; only the kill explains a
            # prompt return.
            assert elapsed < 1.5
            stats = solo.stats()
            assert stats["kills"] == 1
            assert stats["crashes"] == 0
            # The background respawn restores service.
            assert solo.run(echo, "after the kill") == "after the kill"

    def test_cancellation_kills_the_worker(self):
        with ProcessPool(workers=1) as solo:
            solo.prestart(wait=True)
            budget = Budget.from_timeout(30.0)
            import threading

            threading.Timer(0.2, budget.cancel).start()
            start = time.monotonic()
            with pytest.raises(BudgetExceeded) as err:
                solo.run(stall, 30.0, budget=budget)
            assert err.value.reason == "cancelled"
            assert time.monotonic() - start < 1.5
            assert solo.stats()["kills"] == 1


class TestLifecycle:
    def test_lazy_spawn(self):
        fresh = ProcessPool(workers=4)
        try:
            assert fresh.stats()["spawned_total"] == 0
            fresh.run(echo, 1)
            # One task needed one worker; the other three were never paid.
            assert fresh.stats()["spawned_total"] == 1
        finally:
            fresh.close()

    def test_close_is_idempotent_and_rejects_new_work(self, pool):
        scratch = ProcessPool(workers=1)
        scratch.run(echo, "warm")
        scratch.close()
        scratch.close()
        with pytest.raises(RuntimeError):
            scratch.run(echo, "too late")

    def test_workers_below_one_rejected(self):
        with pytest.raises(ValueError):
            ProcessPool(workers=0)


class TestArtifactTasks:
    @property
    def SOURCE(self):
        from repro.suite.loader import load_source

        return load_source("figure2")

    def test_analyze_artifact_roundtrip(self, pool):
        payload, timings = pool.run(
            analyze_artifact, self.SOURCE, "unit.mj", None
        )
        analyzed = load_artifact(payload)
        assert analyzed.sdg.statement_count() > 0
        assert analyzed.timings is None  # stripped from the artifact
        assert timings  # ... but shipped out-of-band

    def test_artifact_bytes_are_deterministic_across_workers(self, pool):
        """Every worker must encode the same analysis to the same
        canonical sections.  The RICH pickle is deliberately excluded:
        it serializes the object graph, whose set/dict iteration orders
        depend on per-process ``hash(None)`` (address-derived under
        ASLR on Python < 3.12) — which is exactly why the slice path
        reads the canonical sections and never the pickle."""
        from repro.artifact import canonical_bytes

        blobs = {
            canonical_bytes(
                pool.run(analyze_artifact, self.SOURCE, "unit.mj", None)[0]
            )
            for _ in range(4)
        }
        assert len(blobs) == 1

    def test_artifact_payload_strips_timings_only(self):
        from repro import analyze

        analyzed = analyze(self.SOURCE, "unit.mj")
        restored = load_artifact(artifact_payload(analyzed))
        assert restored.timings is None
        assert restored.sdg.edge_count() == analyzed.sdg.edge_count()

    def test_analysis_error_keeps_original_type(self, pool):
        with pytest.raises(WorkerError) as err:
            pool.run(analyze_artifact, "class {", "broken.mj", None)
        assert err.value.error_type not in ("WorkerError", "WorkerCrashed")
        assert err.value.message
