"""Consistent-hash ring properties the sharded tier depends on.

Three load-bearing guarantees: fingerprints spread evenly across
shards (balance), membership changes move only ~1/N of the keyspace
(the whole point of consistent hashing — a shard join/leave warms the
survivors instead of flushing the tier), and identical fingerprints
always land on the same shard (routing stability, which is what makes
per-shard cache locality real).
"""

from __future__ import annotations

import hashlib

import pytest

from repro.server.ring import HashRing

#: Synthetic "fingerprints": same construction as the real routing key
#: (hex SHA-256 digests), enough of them for tight distribution stats.
KEYS = [
    hashlib.sha256(f"program-{i}".encode()).hexdigest() for i in range(8000)
]


def _nodes(count: int) -> list[str]:
    return [f"127.0.0.1:{7000 + i}" for i in range(count)]


def _counts(ring: HashRing) -> dict[str, int]:
    counts = {node: 0 for node in ring.nodes()}
    for key in KEYS:
        counts[ring.owner(key)] += 1
    return counts


class TestBalance:
    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_key_distribution_is_balanced(self, shards):
        """Every shard owns within 2x of its fair share of keys."""
        ring = HashRing(_nodes(shards), replicas=64)
        counts = _counts(ring)
        fair = len(KEYS) / shards
        for node, count in counts.items():
            assert fair / 2 <= count <= fair * 2, (
                f"{node} owns {count} of {len(KEYS)} keys "
                f"(fair share {fair:.0f})"
            )

    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_ownership_fractions_track_key_counts(self, shards):
        """The analytic arc shares agree with empirical key placement."""
        ring = HashRing(_nodes(shards), replicas=64)
        counts = _counts(ring)
        shares = ring.ownership()
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        for node in ring.nodes():
            empirical = counts[node] / len(KEYS)
            assert abs(shares[node] - empirical) < 0.05

    def test_more_replicas_tighten_balance(self):
        spreads = {}
        for replicas in (8, 128):
            ring = HashRing(_nodes(4), replicas=replicas)
            counts = _counts(ring)
            spreads[replicas] = max(counts.values()) - min(counts.values())
        assert spreads[128] < spreads[8]


class TestRemapping:
    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_join_moves_about_one_over_n(self, shards):
        """Adding shard N+1 remaps ~1/(N+1) of keys — never more than
        twice that, and every move targets the new shard only."""
        ring = HashRing(_nodes(shards), replicas=64)
        before = {key: ring.owner(key) for key in KEYS}
        newcomer = "127.0.0.1:9999"
        ring.add(newcomer)
        moved = 0
        for key in KEYS:
            after = ring.owner(key)
            if after != before[key]:
                moved += 1
                # Consistent hashing's defining property: a join only
                # reassigns keys *to the joiner*, never between
                # incumbents.
                assert after == newcomer
        assert moved / len(KEYS) <= 2 / (shards + 1)
        assert moved > 0

    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_leave_moves_only_the_leavers_keys(self, shards):
        ring = HashRing(_nodes(shards), replicas=64)
        before = {key: ring.owner(key) for key in KEYS}
        leaver = ring.nodes()[0]
        ring.remove(leaver)
        for key in KEYS:
            if before[key] != leaver:
                assert ring.owner(key) == before[key]

    def test_leave_then_rejoin_restores_placement(self):
        """A shard bouncing (crash + recovery) reclaims exactly its old
        arc — the tier's warm caches survive the bounce."""
        ring = HashRing(_nodes(4), replicas=64)
        before = {key: ring.owner(key) for key in KEYS}
        ring.remove(_nodes(4)[2])
        ring.add(_nodes(4)[2])
        assert {key: ring.owner(key) for key in KEYS} == before


class TestStability:
    def test_identical_fingerprints_route_identically(self):
        ring_a = HashRing(_nodes(5), replicas=64)
        # Same membership, different insertion order, fresh process
        # state: placement must be a pure function of (nodes, key).
        ring_b = HashRing(list(reversed(_nodes(5))), replicas=64)
        for key in KEYS[:500]:
            assert ring_a.owner(key) == ring_b.owner(key)
            assert ring_a.preference(key) == ring_b.preference(key)

    def test_preference_starts_with_owner_and_covers_all(self):
        ring = HashRing(_nodes(4), replicas=64)
        for key in KEYS[:200]:
            order = ring.preference(key)
            assert order[0] == ring.owner(key)
            assert sorted(order) == ring.nodes()

    def test_preference_orders_differ_across_keys(self):
        """Failover traffic spreads: the second-choice shard is not the
        same for every key (no thundering herd onto one survivor)."""
        ring = HashRing(_nodes(4), replicas=64)
        seconds = {ring.preference(key)[1] for key in KEYS[:200]}
        assert len(seconds) > 1


class TestReplicaPlacement:
    """Properties the replicated artifact tier leans on: R distinct
    live holders per key, balance no worse than single-owner placement,
    and a shard loss remapping only the arcs it held."""

    @pytest.mark.parametrize("shards,want", [(2, 2), (4, 2), (4, 3), (8, 3)])
    def test_replicas_are_distinct_live_shards(self, shards, want):
        ring = HashRing(_nodes(shards), replicas=64)
        live = set(ring.nodes())
        for key in KEYS[:500]:
            holders = ring.replicas_for(key, want)
            assert len(holders) == want
            assert len(set(holders)) == want
            assert set(holders) <= live

    def test_replicas_clamp_to_ring_size(self):
        ring = HashRing(_nodes(2), replicas=64)
        for key in KEYS[:100]:
            assert sorted(ring.replicas_for(key, 5)) == ring.nodes()

    def test_replicas_prefix_preference_owner_first(self):
        """The replica set is exactly the failover order's head — a
        failed-over read lands on a node that holds a copy."""
        ring = HashRing(_nodes(6), replicas=64)
        for key in KEYS[:300]:
            holders = ring.replicas_for(key, 3)
            assert holders[0] == ring.owner(key)
            assert holders == ring.preference(key)[:3]

    @pytest.mark.parametrize("shards", [4, 8])
    def test_replica_load_stays_within_ownership_bounds(self, shards):
        """Counting every replica a shard holds (not just arcs it owns),
        the per-shard load stays within the same 2x-of-fair band the
        single-owner balance tests enforce."""
        ring = HashRing(_nodes(shards), replicas=64)
        held = {node: 0 for node in ring.nodes()}
        r = 2
        for key in KEYS:
            for node in ring.replicas_for(key, r):
                held[node] += 1
        fair = len(KEYS) * r / shards
        for node, count in held.items():
            assert fair / 2 <= count <= fair * 2, (
                f"{node} holds {count} replicas (fair {fair:.0f})"
            )

    @pytest.mark.parametrize("shards", [4, 8])
    def test_losing_one_shard_remaps_only_its_arcs(self, shards):
        """Replica sets for keys the leaver held nowhere are untouched;
        keys it did hold keep every surviving holder (only the lost
        copy is re-homed)."""
        ring = HashRing(_nodes(shards), replicas=64)
        r = 2
        before = {key: ring.replicas_for(key, r) for key in KEYS}
        leaver = ring.nodes()[1]
        ring.remove(leaver)
        changed = 0
        for key in KEYS:
            after = ring.replicas_for(key, r)
            if leaver not in before[key]:
                assert after == before[key]
            else:
                changed += 1
                survivors = [n for n in before[key] if n != leaver]
                # Surviving copies keep their rank; exactly one new
                # holder is appended from further along the walk.
                assert after[: len(survivors)] == survivors
                assert len(after) == r
        # The leaver held ~r/N of all (key, copy) placements.
        assert changed / len(KEYS) <= 2 * r / shards

    def test_replica_count_must_be_positive(self):
        ring = HashRing(_nodes(2))
        with pytest.raises(ValueError):
            ring.replicas_for("abc", 0)


class TestEdges:
    def test_empty_ring(self):
        ring = HashRing()
        assert len(ring) == 0
        assert ring.preference("abc") == []
        assert ring.ownership() == {}
        with pytest.raises(LookupError):
            ring.owner("abc")

    def test_single_node_owns_everything(self):
        ring = HashRing(["only:1"])
        assert ring.ownership() == {"only:1": 1.0}
        assert all(ring.owner(key) == "only:1" for key in KEYS[:100])

    def test_add_is_idempotent(self):
        ring = HashRing(_nodes(3))
        before = {key: ring.owner(key) for key in KEYS[:200]}
        ring.add(_nodes(3)[1])
        assert {key: ring.owner(key) for key in KEYS[:200]} == before

    def test_replicas_must_be_positive(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)
