"""Thin and traditional slicing tests on the paper's figure programs."""

from __future__ import annotations

from repro.lang.source import find_markers
from repro.slicing.engine import backward_bfs
from repro.slicing.thin import ExpandedThinSlicer, ThinSlicer
from repro.slicing.traditional import TraditionalSlicer
from repro.sdg.nodes import THIN_KINDS, TRADITIONAL_KINDS


def tags(source: str) -> dict[str, int]:
    return find_markers(source)["tag"]


class TestFigure2:
    """The paper's minimal example: thin = {allocB, store, seed}."""

    def test_thin_slice_is_exactly_the_producers(self, figure2):
        source, compiled, pts, sdg = figure2
        t = tags(source)
        result = ThinSlicer(compiled, sdg).slice_from_line(t["seed"])
        assert result.lines == {t["allocB"], t["store"], t["seed"]}

    def test_traditional_slice_is_whole_program(self, figure2):
        source, compiled, pts, sdg = figure2
        t = tags(source)
        result = TraditionalSlicer(compiled, sdg).slice_from_line(t["seed"])
        for name in ("allocA", "copyz", "allocB", "copyw", "store", "cond", "seed"):
            assert t[name] in result.lines

    def test_thin_subset_of_traditional(self, figure2):
        source, compiled, pts, sdg = figure2
        t = tags(source)
        thin = ThinSlicer(compiled, sdg).slice_from_line(t["seed"])
        trad = TraditionalSlicer(compiled, sdg).slice_from_line(t["seed"])
        assert thin.lines <= trad.lines
        assert set(thin.traversal.order) <= set(trad.traversal.order)

    def test_seed_always_in_slice(self, figure2):
        source, compiled, pts, sdg = figure2
        t = tags(source)
        thin = ThinSlicer(compiled, sdg).slice_from_line(t["seed"])
        assert t["seed"] in thin.lines

    def test_empty_seed_line_gives_empty_slice(self, figure2):
        source, compiled, pts, sdg = figure2
        result = ThinSlicer(compiled, sdg).slice_from_line(1)  # comment line
        assert result.lines == set()

    def test_bfs_distances_monotone_in_order(self, figure2):
        source, compiled, pts, sdg = figure2
        t = tags(source)
        traversal = ThinSlicer(compiled, sdg).slice_from_line(t["seed"]).traversal
        distances = [traversal.distance[n] for n in traversal.order]
        assert distances == sorted(distances)


class TestFigure1:
    """The first-names example: the thin slice traces the value through
    the Vector; the SessionState plumbing is excluded."""

    def seed(self, source):
        return tags(source)["seed"]

    def test_thin_slice_contains_producer_chain(self, figure1):
        source, compiled, pts, sdg = figure1
        t = tags(source)
        result = ThinSlicer(compiled, sdg).slice_from_line(t["seed"])
        for name in ("read", "indexOf", "buggy", "add", "get", "seed"):
            assert t[name] in result.lines, name

    def test_thin_slice_excludes_session_state(self, figure1):
        source, compiled, pts, sdg = figure1
        t = tags(source)
        result = ThinSlicer(compiled, sdg).slice_from_line(t["seed"])
        assert t["setNames"] not in result.lines
        assert t["getNames"] not in result.lines

    def test_traditional_slice_includes_session_state(self, figure1):
        source, compiled, pts, sdg = figure1
        t = tags(source)
        result = TraditionalSlicer(compiled, sdg).slice_from_line(t["seed"])
        assert t["setNames"] in result.lines
        assert t["getNames"] in result.lines

    def test_thin_traverses_vector_internals(self, figure1):
        source, compiled, pts, sdg = figure1
        t = tags(source)
        result = ThinSlicer(compiled, sdg).slice_from_line(t["seed"])
        text = compiled.source.text.splitlines()
        slice_texts = [text[line - 1] for line in result.lines]
        assert any("elems[count++] = p" in s for s in slice_texts)
        assert any("return elems[ind]" in s for s in slice_texts)

    def test_thin_much_smaller_than_traditional(self, figure1):
        source, compiled, pts, sdg = figure1
        t = tags(source)
        thin = ThinSlicer(compiled, sdg).slice_from_line(t["seed"])
        trad = TraditionalSlicer(compiled, sdg).slice_from_line(t["seed"])
        assert len(thin.lines) * 2 <= len(trad.lines)

    def test_source_view_marks_slice_lines(self, figure1):
        source, compiled, pts, sdg = figure1
        t = tags(source)
        view = ThinSlicer(compiled, sdg).slice_from_line(t["seed"]).source_view()
        assert "substring" in view
        assert all(line.startswith(("*", " ")) for line in view.splitlines())


class TestFigure4:
    """The file/close example: thin = {setopen, close, isopen, readopen,
    seed}, the paper's {3, 4, 5, 9, 10}."""

    def test_thin_slice_matches_paper(self, figure4):
        source, compiled, pts, sdg = figure4
        t = tags(source)
        result = ThinSlicer(compiled, sdg).slice_from_line(t["seed"])
        assert result.lines == {
            t["setopen"],
            t["close"],
            t["isopen"],
            t["readopen"],
            t["seed"],
        }

    def test_thin_slice_omits_vector_plumbing(self, figure4):
        source, compiled, pts, sdg = figure4
        t = tags(source)
        result = ThinSlicer(compiled, sdg).slice_from_line(t["seed"])
        for name in ("allocvec", "addfile", "getg", "geth", "closecall"):
            assert t[name] not in result.lines, name

    def test_traditional_includes_plumbing(self, figure4):
        source, compiled, pts, sdg = figure4
        t = tags(source)
        result = TraditionalSlicer(compiled, sdg).slice_from_line(t["seed"])
        assert t["closecall"] in result.lines
        assert t["addfile"] in result.lines


class TestFigure5:
    """The tough cast: thin slice from the op read reaches the op writes
    in every constructor."""

    def test_thin_from_op_read_reaches_ctor_writes(self, figure5):
        source, compiled, pts, sdg = figure5
        t = tags(source)
        result = ThinSlicer(compiled, sdg).slice_from_line(t["opread"])
        assert t["opwrite"] in result.lines
        assert t["addctor"] in result.lines
        assert t["mulctor"] in result.lines
        assert t["constctor"] in result.lines

    def test_thin_from_cast_alone_is_small(self, figure5):
        source, compiled, pts, sdg = figure5
        t = tags(source)
        thin = ThinSlicer(compiled, sdg).slice_from_line(t["cast"])
        trad = TraditionalSlicer(compiled, sdg).slice_from_line(t["cast"])
        # The cast's value comes from n (the parameter), so the thin
        # slice stays within the Node allocations; the traditional slice
        # additionally pulls in the tag reads and dispatch conditions.
        assert len(thin.lines) < len(trad.lines)
        assert len(thin.lines) <= 10


class TestExpandedThinSlicer:
    def test_zero_extra_levels_equals_thin(self, figure4):
        source, compiled, pts, sdg = figure4
        t = tags(source)
        thin = ThinSlicer(compiled, sdg).slice_from_line(t["seed"])
        expanded = ExpandedThinSlicer(compiled, sdg, levels=0).slice_from_line(
            t["seed"]
        )
        assert expanded.lines == thin.lines

    def test_one_level_adds_base_explainers(self, figure4):
        source, compiled, pts, sdg = figure4
        t = tags(source)
        thin = ThinSlicer(compiled, sdg).slice_from_line(t["seed"])
        expanded = ExpandedThinSlicer(compiled, sdg, levels=1).slice_from_line(
            t["seed"]
        )
        assert thin.lines < expanded.lines
        assert t["closecall"] in expanded.lines

    def test_levels_are_monotone(self, figure4):
        source, compiled, pts, sdg = figure4
        t = tags(source)
        previous: set[int] = set()
        for levels in range(4):
            lines = ExpandedThinSlicer(
                compiled, sdg, levels=levels
            ).slice_from_line(t["seed"]).lines
            assert previous <= lines
            previous = lines

    def test_expanded_still_subset_of_traditional(self, figure4):
        source, compiled, pts, sdg = figure4
        t = tags(source)
        trad = TraditionalSlicer(compiled, sdg).slice_from_line(t["seed"])
        expanded = ExpandedThinSlicer(compiled, sdg, levels=3).slice_from_line(
            t["seed"]
        )
        assert expanded.lines <= trad.lines


class TestEngine:
    def test_backward_bfs_respects_kind_filter(self, figure2):
        source, compiled, pts, sdg = figure2
        t = tags(source)
        seeds = []
        for instr in compiled.instructions_at_line(t["seed"]):
            seeds.extend(sdg.nodes_of_instruction(instr))
        thin = backward_bfs(sdg, seeds, THIN_KINDS)
        trad = backward_bfs(sdg, seeds, TRADITIONAL_KINDS)
        assert set(thin.order) <= set(trad.order)

    def test_slice_from_lines_unions_seeds(self, figure2):
        source, compiled, pts, sdg = figure2
        t = tags(source)
        slicer = ThinSlicer(compiled, sdg)
        combined = slicer.slice_from_lines([t["seed"], t["cond"]])
        single = slicer.slice_from_line(t["seed"])
        assert single.lines <= combined.lines
        assert t["cond"] in combined.lines

    def test_statements_are_statement_nodes(self, figure2):
        source, compiled, pts, sdg = figure2
        t = tags(source)
        result = ThinSlicer(compiled, sdg).slice_from_line(t["seed"])
        from repro.sdg.nodes import StmtNode

        assert all(isinstance(s, StmtNode) for s in result.statements)
