"""Differential tests: optimized points-to solver vs the reference.

The optimized solver (:mod:`repro.analysis.pointsto`) collapses
copy-constraint cycles with union-find, propagates deltas along a
topological worklist, and interns keys/objects as integers.  The
reference solver (:mod:`repro.analysis.pointsto_reference`) is the
direct transcription of the naive fixpoint.  Every observable output —
points-to sets, method instances, the call graph, and ultimately the
slices built on top — must be identical; performance is the only
permitted difference.

Also covers the demand-driven tabulation slicer: a single-seed slice
must equal the whole-program-summaries slice while tabulating strictly
fewer path edges.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.analysis.modref import compute_modref
from repro.analysis.pointsto import solve_points_to
from repro.analysis.pointsto_reference import solve_points_to_reference
from repro.frontend import compile_source
from repro.sdg.sdg import build_sdg
from repro.slicing.tabulation import TabulationSlicer
from repro.slicing.thin import ThinSlicer
from repro.slicing.traditional import TraditionalSlicer
from repro.suite.harness import SUITE_PROGRAMS
from repro.suite.loader import load_source


def _assert_results_identical(fast, slow) -> None:
    assert fast.pts, "optimized solver produced no points-to facts"
    # The optimized solver interns pointer keys eagerly, so it may carry
    # entries whose set stayed empty; the reference only materializes a
    # key once something flows into it.  The *facts* — non-empty sets —
    # must match exactly.
    fast_facts = {k: v for k, v in fast.pts.items() if v}
    slow_facts = {k: v for k, v in slow.pts.items() if v}
    assert fast_facts, "optimized solver produced no non-empty facts"
    assert fast_facts == slow_facts, "points-to sets differ"
    assert fast.instances == slow.instances, "method instances differ"
    assert fast.call_graph.nodes == slow.call_graph.nodes
    fast_edges = {k: v for k, v in fast.call_graph.edges.items() if v}
    slow_edges = {k: v for k, v in slow.call_graph.edges.items() if v}
    assert fast_edges == slow_edges, "call graph edges differ"


@pytest.mark.parametrize("name", SUITE_PROGRAMS)
def test_solver_differential_on_suite(name):
    compiled = compile_source(load_source(name), name, include_stdlib=True)
    fast = solve_points_to(compiled.ir)
    slow = solve_points_to_reference(compiled.ir)
    _assert_results_identical(fast, slow)


def _sample_lines(compiled, count: int = 12) -> list[int]:
    lines = sorted(
        {
            instr.position.line
            for instr in compiled.ir.all_instructions()
            if instr.position.line
        }
    )
    step = max(1, len(lines) // count)
    return lines[::step][:count]


@pytest.mark.parametrize("name", ["minixml", "jtopas"])
def test_slices_identical_across_solvers(name):
    """Both solvers must induce byte-identical thin/traditional slices."""
    compiled = compile_source(load_source(name), name, include_stdlib=True)
    fast = solve_points_to(compiled.ir)
    slow = solve_points_to_reference(compiled.ir)
    sdg_fast = build_sdg(compiled, fast)
    sdg_slow = build_sdg(compiled, slow)
    for line in _sample_lines(compiled):
        for slicer_cls in (ThinSlicer, TraditionalSlicer):
            got = slicer_cls(compiled, sdg_fast).slice_from_line(line)
            want = slicer_cls(compiled, sdg_slow).slice_from_line(line)
            assert got.lines == want.lines, (
                f"{slicer_cls.__name__} slice at {name}:{line} differs"
            )


# An adversarial input for SCC collapsing: static fields copied around a
# ring inside a recursive method (every rotation is a copy-constraint
# cycle a->b->c->a), plus two Chain objects whose `pass` methods recurse
# through each other — the call graph and the copy graph both contain
# nontrivial strongly connected components.
SCC_HEAVY = """
class Node { Object payload; }

class Ring {
  static Object a;
  static Object b;
  static Object c;

  static void rotate(int n) {
    if (n > 0) {
      Object t = Ring.a;
      Ring.a = Ring.b;
      Ring.b = Ring.c;
      Ring.c = t;
      Ring.rotate(n - 1);
    }
  }
}

class Chain {
  Object slot;
  Chain next;

  Object pass(Object v, int depth) {
    if (depth > 0) {
      this.slot = v;
      return this.next.pass(this.slot, depth - 1);
    }
    return v;
  }
}

class Main {
  static void main(String[] args) {
    Ring.a = new Node();
    Ring.b = new Node();
    Ring.c = new Node();
    Ring.rotate(9);
    Chain first = new Chain();
    Chain second = new Chain();
    first.next = second;
    second.next = first;
    Object out = first.pass(Ring.a, 7);   //@tag:seed
    print(out);
  }
}
"""


def test_solver_differential_scc_heavy():
    compiled = compile_source(SCC_HEAVY, "scc.mj", include_stdlib=True)
    fast = solve_points_to(compiled.ir)
    slow = solve_points_to_reference(compiled.ir)
    _assert_results_identical(fast, slow)
    # The ring rotation must smear all three Node allocations over all
    # three static fields (the cycle is collapsed, not dropped).
    for field in ("a", "b", "c"):
        objs = fast.static_points_to("Ring", field)
        assert len(objs) == 3, f"Ring.{field} -> {objs}"


def test_scc_heavy_slices_identical():
    compiled = compile_source(SCC_HEAVY, "scc.mj", include_stdlib=True)
    fast = solve_points_to(compiled.ir)
    slow = solve_points_to_reference(compiled.ir)
    sdg_fast = build_sdg(compiled, fast)
    sdg_slow = build_sdg(compiled, slow)
    for line in _sample_lines(compiled):
        got = ThinSlicer(compiled, sdg_fast).slice_from_line(line)
        want = ThinSlicer(compiled, sdg_slow).slice_from_line(line)
        assert got.lines == want.lines


class TestProcessArtifactDeterminism:
    """Canonical artifact sections must be a pure function of the input.

    The serialize-once path stores a worker's flat artifact bytes
    straight into the content-addressed disk store, so a *warm* pool
    worker must produce exactly the canonical sections a cold, freshly
    started interpreter produces — for every suite program, in one
    fixed worker pair (warm reuse is the adversarial part: a prior
    task's compile history leaking into node numbering or call-site
    uids is precisely the bug class this guards against).  Only the
    ``RICH`` pickle escape hatch may differ across processes
    (``hash(None)`` ASLR shapes its memo topology), which is why the
    comparison digests ``canonical_bytes``, not the full payload."""

    REFERENCE_SCRIPT = textwrap.dedent(
        """
        import hashlib, json, sys
        from repro.artifact import canonical_bytes
        from repro.parallel import analyze_artifact
        from repro.suite.harness import SUITE_PROGRAMS
        from repro.suite.loader import load_source

        digests = {}
        for name in SUITE_PROGRAMS:
            payload, _ = analyze_artifact(load_source(name), name + ".mj")
            digests[name] = hashlib.sha256(canonical_bytes(payload)).hexdigest()
        print(json.dumps(digests))
        """
    )

    def test_warm_worker_bytes_match_cold_interpreter(self):
        import repro
        from repro.artifact import canonical_bytes

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = "0"
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        reference = subprocess.run(
            [sys.executable, "-c", self.REFERENCE_SCRIPT],
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert reference.returncode == 0, reference.stderr
        want = json.loads(reference.stdout)

        from repro.parallel import ProcessPool, analyze_artifact

        with ProcessPool(workers=2) as pool:
            got = {}
            for name in SUITE_PROGRAMS:
                payload, _ = pool.run(
                    analyze_artifact, load_source(name), name + ".mj"
                )
                got[name] = hashlib.sha256(
                    canonical_bytes(payload)
                ).hexdigest()
        assert got == want


class TestExecutorPathIdentity:
    """One (program, seed) query answered four ways — local slicer,
    thread-executor daemon, process-executor daemon, and ``slice_batch``
    — must produce byte-identical payloads (``origin`` aside, which
    reports cache provenance, not slice content)."""

    @staticmethod
    def _rpc(server, method, **params):
        line = json.dumps({"id": 1, "method": method, "params": params})
        response = json.loads(server.handle_line(line))
        assert response["ok"], response
        return response["result"]

    @staticmethod
    def _canonical(payload):
        stripped = {k: v for k, v in payload.items() if k != "origin"}
        return json.dumps(stripped, sort_keys=True)

    def test_four_paths_byte_identical(self):
        from repro import AnalyzeOptions, analyze
        from repro.lang.source import marker_line
        from repro.server.cache import AnalysisCache
        from repro.server.daemon import SliceServer
        from repro.server.protocol import slice_payload

        program = "figure2"
        source = load_source(program)
        seed = marker_line(source, "tag", "seed")

        analyzed = analyze(
            source,
            f"{program}.mj",
            options=AnalyzeOptions(include_stdlib=True),
        )
        local = slice_payload(
            analyzed.thin_slicer.slice_from_line(seed),
            program=f"{program}.mj",
            line=seed,
            flavor="thin",
            context=0,
        )

        threaded = SliceServer(AnalysisCache(), executor="thread")
        try:
            via_thread = self._rpc(
                threaded, "slice", program=program, line=seed
            )
            batch = self._rpc(
                threaded, "slice_batch", program=program, lines=[seed, seed]
            )
        finally:
            threaded.close()
        processed = SliceServer(
            AnalysisCache(), workers=2, executor="process"
        )
        try:
            via_process = self._rpc(
                processed, "slice", program=program, line=seed
            )
        finally:
            processed.close()

        assert batch["count"] == 2
        assert batch["distinct_programs"] == 1
        want = self._canonical(local)
        assert self._canonical(via_thread) == want
        assert self._canonical(via_process) == want
        for result in batch["results"]:
            assert self._canonical(result) == want


def test_demand_tabulation_matches_full_with_fewer_path_edges():
    """Demand-driven summaries: same slice, strictly less tabulation."""
    compiled = compile_source(
        load_source("minixml"), "minixml", include_stdlib=True
    )
    pts = solve_points_to(compiled.ir)
    modref = compute_modref(compiled.ir, pts)
    sdg = build_sdg(compiled, pts, heap_mode="params", modref=modref)

    full = TabulationSlicer(compiled, sdg)
    full.compute_summaries()

    # Find a seed line whose slice actually crosses procedure
    # boundaries (a slice that stays intraprocedural needs no summaries
    # and proves nothing about demand-driven tabulation).
    best_line, best_edges = None, 0
    for line in _sample_lines(compiled, count=20):
        probe = TabulationSlicer(compiled, sdg)
        probe.slice_from_line(line)
        if probe.path_edge_count > best_edges:
            best_line, best_edges = line, probe.path_edge_count
    assert best_line is not None, "no sampled slice reached a summary"

    full_result = full.slice_from_line(best_line)
    demand = TabulationSlicer(compiled, sdg)
    demand_result = demand.slice_from_line(best_line)

    assert demand_result.lines == full_result.lines
    assert set(demand_result.statements) == set(full_result.statements)
    assert 0 < demand.path_edge_count < full.path_edge_count, (
        f"demand tabulated {demand.path_edge_count} path edges, "
        f"full tabulated {full.path_edge_count}"
    )
