"""Slice server tests: protocol, dispatcher, error isolation, transports."""

from __future__ import annotations

import io
import json
import time

import pytest

from repro.lang.source import marker_line
from repro.server.cache import AnalysisCache
from repro.server.client import ServerError, SliceClient
from repro.server.daemon import SliceServer, serve_stdio, start_tcp_server
from repro.server.protocol import ProtocolError, decode_message, encode_message
from repro.suite.loader import load_source
from tests.conftest import make_server


def seed_line(name: str, tag: str) -> int:
    return marker_line(load_source(name), "tag", tag)


def rpc(server: SliceServer, method: str, request_id=1, **params):
    line = json.dumps({"id": request_id, "method": method, "params": params})
    return json.loads(server.handle_line(line))


@pytest.fixture(scope="module")
def server():
    instance = make_server(AnalysisCache())
    yield instance
    instance.close()


class TestProtocol:
    def test_roundtrip(self):
        message = {"id": 7, "method": "ping", "params": {}}
        assert decode_message(encode_message(message)) == message

    def test_encoded_is_single_line(self):
        line = encode_message({"text": "a\nb", "n": 1})
        assert "\n" not in line

    def test_bad_json_raises(self):
        with pytest.raises(ProtocolError):
            decode_message("{nope")

    def test_non_object_raises(self):
        with pytest.raises(ProtocolError):
            decode_message("[1, 2]")

    def test_garbage_line_answered_not_raised(self, server):
        response = json.loads(server.handle_line("{nope"))
        assert response["ok"] is False
        assert response["id"] is None
        assert response["error"]["type"] == "Protocol"


class TestDispatch:
    def test_ping(self, server):
        response = rpc(server, "ping")
        assert response["ok"] and response["result"]["pong"] is True
        assert response["result"]["protocol"] == 1

    def test_request_id_echoed(self, server):
        response = rpc(server, "ping", request_id="req-42")
        assert response["id"] == "req-42"

    def test_thin_slice(self, server):
        line = seed_line("figure2", "seed")
        response = rpc(server, "slice", program="figure2", line=line)
        result = response["result"]
        assert response["ok"]
        assert result["seed_count"] > 0
        assert result["line_count"] == len(result["lines"])
        assert "new B()" in result["source_view"]
        assert "new A()" not in result["source_view"]

    def test_traditional_slice_is_larger(self, server):
        line = seed_line("figure2", "seed")
        thin = rpc(server, "slice", program="figure2", line=line)
        trad = rpc(
            server, "slice", program="figure2", line=line, flavor="traditional"
        )
        assert trad["result"]["line_count"] > thin["result"]["line_count"]
        assert "new A()" in trad["result"]["source_view"]

    def test_explain(self, server):
        line = seed_line("figure4", "throw")
        response = rpc(server, "explain", program="figure4", line=line)
        texts = [c["text"] for c in response["result"]["conditionals"]]
        assert any("!open" in text for text in texts)

    def test_why(self, server):
        buggy = seed_line("figure1", "buggy")
        seed = seed_line("figure1", "seed")
        response = rpc(
            server, "why", program="figure1", source_line=buggy, sink_line=seed
        )
        result = response["result"]
        assert result["found"]
        assert result["path"][-1]["line"] == buggy or result["path"][0]["line"] == buggy
        assert "substring" in result["rendered"]

    def test_chop(self, server):
        buggy = seed_line("figure1", "buggy")
        seed = seed_line("figure1", "seed")
        response = rpc(
            server, "chop", program="figure1", source_line=buggy, sink_line=seed
        )
        result = response["result"]
        assert not result["empty"]
        assert any("substring" in row["text"] for row in result["lines"])

    def test_slice_batch_matches_single_slices(self, server):
        lines = [seed_line("figure2", "seed"), seed_line("figure2", "seed") - 1]
        batch = rpc(server, "slice_batch", program="figure2", lines=lines)
        assert batch["ok"]
        result = batch["result"]
        assert result["count"] == 2
        assert result["distinct_programs"] == 1
        for line, payload in zip(lines, result["results"]):
            single = rpc(server, "slice", program="figure2", line=line)
            want = dict(single["result"])
            got = dict(payload)
            # Origins may differ (the single slice hits the batch's
            # cache entry); the slice content must be byte-identical.
            want.pop("origin"), got.pop("origin")
            assert json.dumps(got, sort_keys=True) == json.dumps(
                want, sort_keys=True
            )

    def test_slice_batch_items_span_programs(self, server):
        items = [
            {"program": "figure2", "line": seed_line("figure2", "seed")},
            {"program": "figure5", "line": seed_line("figure5", "opread")},
            {
                "program": "figure2",
                "line": seed_line("figure2", "seed"),
                "flavor": "traditional",
            },
        ]
        response = rpc(server, "slice_batch", items=items)
        assert response["ok"]
        result = response["result"]
        assert result["count"] == 3
        assert result["distinct_programs"] == 2
        assert result["results"][0]["program"] == "figure2.mj"
        assert result["results"][1]["program"] == "figure5.mj"
        assert result["results"][2]["flavor"] == "traditional"
        assert (
            result["results"][2]["line_count"]
            > result["results"][0]["line_count"]
        )

    def test_slice_batch_needs_lines_or_items(self, server):
        response = rpc(server, "slice_batch", program="figure2")
        assert response["ok"] is False
        assert response["error"]["type"] == "BadParams"

    def test_slice_batch_rejects_bad_line_type(self, server):
        response = rpc(
            server, "slice_batch", program="figure2", lines=[3, "nine"]
        )
        assert response["ok"] is False
        assert response["error"]["type"] == "BadParams"

    def test_slice_batch_rejects_empty_items(self, server):
        response = rpc(server, "slice_batch", program="figure2", items=[])
        assert response["ok"] is False
        assert response["error"]["type"] == "BadParams"

    def test_slice_batch_enforces_item_cap(self, server):
        from repro.server.daemon import MAX_BATCH_ITEMS

        response = rpc(
            server,
            "slice_batch",
            program="figure2",
            lines=[1] * (MAX_BATCH_ITEMS + 1),
        )
        assert response["ok"] is False
        assert response["error"]["type"] == "BadParams"
        assert str(MAX_BATCH_ITEMS) in response["error"]["message"]

    def test_slice_batch_validation_is_all_or_nothing(self, server):
        before = rpc(server, "stats")["result"]["cache"]["misses"]
        items = [
            {"program": "figure2", "line": seed_line("figure2", "seed")},
            {"program": "no-such-program", "line": 1},
        ]
        response = rpc(server, "slice_batch", items=items)
        assert response["ok"] is False
        assert response["error"]["type"] == "UnknownProgram"
        # The bad item failed the request before any analysis started.
        assert rpc(server, "stats")["result"]["cache"]["misses"] == before

    def test_program_stats(self, server):
        response = rpc(server, "stats", program="figure2")
        result = response["result"]
        assert result["sdg_statements"] > 0
        assert result["origin"] in ("memory", "disk", "analyzed")

    def test_server_stats_counters(self, server):
        before = rpc(server, "stats")["result"]
        rpc(server, "ping")
        after = rpc(server, "stats")["result"]
        assert after["requests_total"] >= before["requests_total"] + 1
        assert "slice" in after["methods"]
        assert after["methods"]["slice"]["count"] >= 1
        assert after["methods"]["slice"]["mean_ms"] >= 0
        assert after["cache"]["memory_hits"] + after["cache"]["misses"] > 0

    def test_unknown_method(self, server):
        response = rpc(server, "frobnicate")
        assert response["error"]["type"] == "UnknownMethod"

    def test_unknown_program(self, server):
        response = rpc(server, "slice", program="nope-nope", line=1)
        assert response["error"]["type"] == "UnknownProgram"

    def test_bad_params(self, server):
        response = rpc(server, "slice", program="figure2", line="three")
        assert response["error"]["type"] == "BadParams"
        response = rpc(server, "slice", line=3)
        assert response["error"]["type"] == "BadParams"
        response = rpc(
            server, "slice", program="figure2", line=3, flavor="mystery"
        )
        assert response["error"]["type"] == "BadParams"

    def test_bad_context_param(self, server):
        line = seed_line("figure2", "seed")
        for bad in ("two", 1.5, True, None):
            response = rpc(
                server, "slice", program="figure2", line=line, context=bad
            )
            assert response["error"]["type"] == "BadParams", bad
            assert "context" in response["error"]["message"]

    def test_bad_deadline_param(self, server):
        line = seed_line("figure2", "seed")
        for bad in ("soon", 0, -1, True):
            response = rpc(
                server, "slice", program="figure2", line=line, deadline=bad
            )
            assert response["error"]["type"] == "BadParams", bad

    def test_health(self, server):
        response = rpc(server, "health")
        result = response["result"]
        assert result["healthy"] is True
        assert result["workers"] >= 1
        assert result["busy"] == 0 and result["queued"] == 0
        assert result["shed_total"] == 0

    def test_service_stats_block(self, server):
        stats = rpc(server, "stats")["result"]["service"]
        assert stats["workers"] >= 1
        assert "shed_total" in stats and "cancelled_total" in stats

    def test_compile_error_is_isolated(self, server):
        response = rpc(server, "slice", source="class {", line=1)
        assert response["ok"] is False
        assert response["error"]["message"]
        # The daemon survives and keeps answering.
        assert rpc(server, "ping")["ok"]

    def test_timeout_returns_structured_error(self):
        class SlowCache(AnalysisCache):
            def get_entry(
                self, source, filename="<input>", options=None, **kwargs
            ):
                time.sleep(0.5)
                return super().get_entry(source, filename, options, **kwargs)

        slow = make_server(SlowCache(), timeout=0.05)
        try:
            response = rpc(slow, "slice", program="figure2", line=1)
            assert response["error"]["type"] == "Timeout"
            assert rpc(slow, "ping")["ok"]
        finally:
            slow.close()

    def test_shutdown_sets_flag(self):
        instance = make_server(AnalysisCache())
        try:
            response = rpc(instance, "shutdown")
            assert response["result"]["stopping"] is True
            assert instance.shutting_down
        finally:
            instance.close()


class TestLineCap:
    def test_oversized_line_rejected(self, server, monkeypatch):
        import repro.server.daemon as daemon_mod

        monkeypatch.setattr(daemon_mod, "MAX_LINE_BYTES", 1024)
        response = json.loads(server.handle_line("x" * 2048))
        assert response["ok"] is False
        assert response["error"]["type"] == "Protocol"
        assert "1024" in response["error"]["message"]
        # Normal-sized traffic still works.
        assert rpc(server, "ping")["ok"]

    def test_stdio_loop_recovers_after_oversized_line(self, monkeypatch):
        import repro.server.daemon as daemon_mod

        monkeypatch.setattr(daemon_mod, "MAX_LINE_BYTES", 1024)
        huge = "y" * 5000
        requests = "\n".join(
            [
                huge,
                json.dumps({"id": 1, "method": "ping", "params": {}}),
                json.dumps({"id": 2, "method": "shutdown", "params": {}}),
            ]
        )
        out = io.StringIO()
        serve_stdio(make_server(AnalysisCache()), io.StringIO(requests), out)
        responses = [json.loads(l) for l in out.getvalue().splitlines()]
        # Oversized line answered with a Protocol error, then framing
        # recovers: the ping and shutdown still get their responses.
        assert responses[0]["error"]["type"] == "Protocol"
        assert [r["id"] for r in responses[1:]] == [1, 2]
        assert responses[1]["result"]["pong"] is True


class TestStdio:
    def test_serve_stdio_loop(self):
        line = seed_line("figure2", "seed")
        requests = "\n".join(
            json.dumps(r)
            for r in [
                {"id": 1, "method": "ping", "params": {}},
                {
                    "id": 2,
                    "method": "slice",
                    "params": {"program": "figure2", "line": line},
                },
                {"id": 3, "method": "shutdown", "params": {}},
                {"id": 4, "method": "ping", "params": {}},  # after shutdown
            ]
        )
        out = io.StringIO()
        serve_stdio(make_server(AnalysisCache()), io.StringIO(requests), out)
        responses = [json.loads(l) for l in out.getvalue().splitlines()]
        # The loop stops after shutdown: request 4 is never answered.
        assert [r["id"] for r in responses] == [1, 2, 3]
        assert responses[1]["result"]["line_count"] > 0


class TestTCP:
    def test_tcp_roundtrip_and_shutdown(self):
        instance = make_server(AnalysisCache())
        tcp_server, thread = start_tcp_server(instance)
        host, port = tcp_server.server_address[:2]
        try:
            with SliceClient.connect(host, port) as client:
                assert client.ping()["pong"]
                line = seed_line("figure2", "seed")
                first = client.slice_program("figure2", line)
                assert first["origin"] == "analyzed"
                again = client.slice_program("figure2", line)
                assert again["origin"] == "memory"
                stats = client.stats()
                assert stats["cache"]["memory_hits"] >= 1
                with pytest.raises(ServerError) as err:
                    client.request("slice", program="figure2", line="x")
                assert err.value.error_type == "BadParams"
                client.shutdown()
            thread.join(timeout=5)
            assert not thread.is_alive()
        finally:
            tcp_server.server_close()
            instance.close()

    def test_two_connections_share_cache(self):
        instance = make_server(AnalysisCache())
        tcp_server, thread = start_tcp_server(instance)
        host, port = tcp_server.server_address[:2]
        try:
            line = seed_line("figure2", "seed")
            with SliceClient.connect(host, port) as first:
                assert first.slice_program("figure2", line)["origin"] == "analyzed"
            with SliceClient.connect(host, port) as second:
                assert second.slice_program("figure2", line)["origin"] == "memory"
        finally:
            tcp_server.shutdown()
            tcp_server.server_close()
            instance.close()


class TestSpawn:
    def test_spawned_daemon_answers_queries(self, tmp_path):
        source = load_source("figure2")
        line = seed_line("figure2", "seed")
        with SliceClient.spawn(
            extra_args=["--cache-dir", str(tmp_path / "cache"), "--quiet"]
        ) as client:
            assert client.ping()["pong"]
            result = client.slice(source, line, filename="figure2.mj")
            assert result["line_count"] > 0
            stats = client.stats(source=source, filename="figure2.mj")
            assert stats["sdg_statements"] > 0
            assert stats["origin"] == "memory"
            client.shutdown()

    def test_dead_child_raises_structured_disconnect(self, tmp_path):
        client = SliceClient.spawn(
            extra_args=["--no-disk-cache", "--quiet"]
        )
        try:
            assert client.ping()["pong"]
            client.shutdown()
            client.process.wait(timeout=10)
            # Writing to the dead child must surface as a structured
            # ServerError("Disconnected"), never a raw BrokenPipeError.
            with pytest.raises(ServerError) as err:
                client.ping()
            assert err.value.error_type == "Disconnected"
        finally:
            client.close()
