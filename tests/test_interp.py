"""Interpreter semantics tests."""

from __future__ import annotations

import pytest

from repro.frontend import compile_source
from repro.interp.interpreter import Interpreter, run_program
from repro.interp.values import ExecutionResult


def run(source: str, args: list[str] | None = None, stdlib: bool = False,
        max_steps: int = 500_000) -> ExecutionResult:
    compiled = compile_source(source, include_stdlib=stdlib)
    return Interpreter(compiled.ast, compiled.table, max_steps).run_main(args)


def run_main_body(
    body: str,
    args: list[str] | None = None,
    stdlib: bool = False,
    max_steps: int = 500_000,
):
    return run(
        "class Main { static void main(String[] args) { " + body + " } }",
        args,
        stdlib,
        max_steps,
    )


class TestArithmetic:
    def test_basic_ops(self):
        result = run_main_body("print(2 + 3 * 4 - 1);")
        assert result.output == ["13"]

    def test_division_truncates_toward_zero(self):
        result = run_main_body("print(7 / 2); print(-7 / 2); print(7 / -2);")
        assert result.output == ["3", "-3", "-3"]

    def test_modulo_follows_dividend_sign(self):
        result = run_main_body("print(7 % 3); print(-7 % 3); print(7 % -3);")
        assert result.output == ["1", "-1", "1"]

    def test_division_by_zero(self):
        result = run_main_body("print(1 / 0);", stdlib=True)
        assert result.error_class == "ArithmeticException"

    def test_modulo_by_zero(self):
        result = run_main_body("print(1 % 0);", stdlib=True)
        assert result.error_class == "ArithmeticException"

    def test_unary_minus(self):
        assert run_main_body("int x = 5; print(-x);").output == ["-5"]

    def test_comparisons(self):
        result = run_main_body("print(1 < 2); print(2 <= 1); print(3 >= 3);")
        assert result.output == ["true", "false", "true"]


class TestBooleansAndControl:
    def test_short_circuit_and_skips_rhs(self):
        source = """
        class Main {
          static boolean boom() { print("boom"); return true; }
          static void main(String[] args) {
            boolean b = false && boom();
            print(b);
          }
        }
        """
        result = run(source)
        assert result.output == ["false"]

    def test_short_circuit_or_skips_rhs(self):
        source = """
        class Main {
          static boolean boom() { print("boom"); return false; }
          static void main(String[] args) { print(true || boom()); }
        }
        """
        assert run(source).output == ["true"]

    def test_if_else(self):
        body = "if (args.length > 0) { print(\"some\"); } else { print(\"none\"); }"
        assert run_main_body(body, ["x"]).output == ["some"]
        assert run_main_body(body, []).output == ["none"]

    def test_while_loop(self):
        body = "int i = 0; int s = 0; while (i < 5) { s += i; i++; } print(s);"
        assert run_main_body(body).output == ["10"]

    def test_for_with_break_continue(self):
        body = (
            "int s = 0; for (int i = 0; i < 10; i++) {"
            " if (i == 3) { continue; } if (i == 6) { break; } s += i; }"
            " print(s);"
        )
        assert run_main_body(body).output == [str(0 + 1 + 2 + 4 + 5)]

    def test_nested_loop_break_binds_inner(self):
        body = (
            "int n = 0; for (int i = 0; i < 3; i++) {"
            " for (int j = 0; j < 10; j++) { if (j == 1) { break; } n++; } }"
            " print(n);"
        )
        assert run_main_body(body).output == ["3"]

    def test_postfix_returns_old_value(self):
        body = "int i = 5; print(i++); print(i); print(i--); print(i);"
        assert run_main_body(body).output == ["5", "6", "6", "5"]


class TestStrings:
    def test_concat_with_coercion(self):
        body = 'print("n=" + 3 + " b=" + true + " s=" + null);'
        assert run_main_body(body).output == ["n=3 b=true s=null"]

    def test_native_methods(self):
        body = (
            'String s = "Hello World";'
            "print(s.length()); print(s.substring(6)); print(s.indexOf(\"o\"));"
            "print(s.toUpperCase()); print(s.charAt(4));"
        )
        assert run_main_body(body).output == ["11", "World", "4", "HELLO WORLD", "o"]

    def test_equals_vs_identity(self):
        body = 'String a = "x" + 1; print(a.equals("x1")); print(a == "x1");'
        result = run_main_body(body)
        # MJ compares String == by content (documented deviation)
        assert result.output == ["true", "true"]

    def test_substring_out_of_range(self):
        result = run_main_body('String s = "ab"; print(s.substring(0, 5));', stdlib=True)
        assert result.error_class == "StringIndexOutOfBoundsException"

    def test_native_on_null_receiver(self):
        result = run_main_body("String s = null; print(s.length());", stdlib=True)
        assert result.error_class == "NullPointerException"

    def test_hash_code_is_java_compatible(self):
        assert run_main_body('print("Ab".hashCode());').output == [str(31 * 65 + 98)]


class TestObjects:
    def test_field_defaults(self):
        source = """
        class P { int x; boolean b; String s; }
        class Main { static void main(String[] args) {
          P p = new P(); print(p.x); print(p.b); print(p.s);
        } }
        """
        assert run(source).output == ["0", "false", "null"]

    def test_constructor_chain_runs_super_first(self):
        source = """
        class A { A() { print("A"); } }
        class B extends A { B() { print("B"); } }
        class Main { static void main(String[] args) { B b = new B(); } }
        """
        assert run(source).output == ["A", "B"]

    def test_field_initializers_run_after_super(self):
        source = """
        class A { int base; A() { base = 1; } }
        class B extends A { int twice = 10; B() { print(base + twice); } }
        class Main { static void main(String[] args) { B b = new B(); } }
        """
        assert run(source).output == ["11"]

    def test_virtual_dispatch(self):
        source = """
        class A { String who() { return "A"; } }
        class B extends A { String who() { return "B"; } }
        class Main { static void main(String[] args) {
          A x = new B(); print(x.who());
        } }
        """
        assert run(source).output == ["B"]

    def test_inherited_method(self):
        source = """
        class A { int one() { return 1; } }
        class B extends A {}
        class Main { static void main(String[] args) { print(new B().one()); } }
        """
        assert run(source).output == ["1"]

    def test_null_field_access_throws(self):
        source = """
        class P { int x; }
        class Main { static void main(String[] args) {
          P p = null; print(p.x);
        } }
        """
        result = run(source, stdlib=True)
        assert result.error_class == "NullPointerException"

    def test_static_fields_shared(self):
        source = """
        class C { static int n; static void bump() { n++; } }
        class Main { static void main(String[] args) {
          C.bump(); C.bump(); print(C.n);
        } }
        """
        assert run(source).output == ["2"]

    def test_static_initializers_run_in_order(self):
        source = """
        class C { static int A = 2; static int B = A * 3; }
        class Main { static void main(String[] args) { print(C.B); } }
        """
        assert run(source).output == ["6"]

    def test_object_identity_equality(self):
        source = """
        class P {}
        class Main { static void main(String[] args) {
          P a = new P(); P b = new P(); P c = a;
          print(a == b); print(a == c); print(a != b);
        } }
        """
        assert run(source).output == ["false", "true", "true"]


class TestArrays:
    def test_array_read_write(self):
        body = "int[] a = new int[3]; a[1] = 7; print(a[1]); print(a[0]); print(a.length);"
        assert run_main_body(body).output == ["7", "0", "3"]

    def test_out_of_bounds(self):
        result = run_main_body("int[] a = new int[2]; print(a[2]);", stdlib=True)
        assert result.error_class == "ArrayIndexOutOfBoundsException"

    def test_negative_index(self):
        result = run_main_body("int[] a = new int[2]; a[-1] = 0;", stdlib=True)
        assert result.error_class == "ArrayIndexOutOfBoundsException"

    def test_negative_size(self):
        result = run_main_body("int[] a = new int[0 - 3];", stdlib=True)
        assert result.error_class == "NegativeArraySizeException"

    def test_main_args_array(self):
        assert run_main_body("print(args[1]);", ["a", "b"]).output == ["b"]


class TestCastsAndInstanceof:
    SOURCE = """
    class A {}
    class B extends A {}
    class Main {
      static void main(String[] args) {
        A a = new B();
        B b = (B) a;
        print(a instanceof B);
        print(a instanceof A);
        A plain = new A();
        print(plain instanceof B);
        B bad = (B) plain;
      }
    }
    """

    def test_cast_and_instanceof(self):
        result = run(self.SOURCE, stdlib=True)
        assert result.output == ["true", "true", "false"]
        assert result.error_class == "ClassCastException"

    def test_null_cast_ok(self):
        body = "Object o = null; String s = (String) o; print(s);"
        assert run_main_body(body).output == ["null"]

    def test_null_instanceof_false(self):
        body = "Object o = null; print(o instanceof String);"
        assert run_main_body(body).output == ["false"]


class TestExceptions:
    def test_throw_and_catch(self):
        source = """
        class E { String m; E(String m) { this.m = m; } }
        class Main { static void main(String[] args) {
          try { throw new E("boom"); } catch (E e) { print("caught " + e.m); }
          print("after");
        } }
        """
        assert run(source).output == ["caught boom", "after"]

    def test_catch_matches_subtypes(self):
        result = run_main_body(
            "try { int x = 1 / 0; } catch (RuntimeException e) {"
            ' print("caught " + e.getMessage()); }',
            stdlib=True,
        )
        assert result.output == ["caught / by zero"]

    def test_catch_type_mismatch_propagates(self):
        source = """
        class E1 { E1() {} }
        class E2 { E2() {} }
        class Main { static void main(String[] args) {
          try { throw new E1(); } catch (E2 e) { print("wrong"); }
        } }
        """
        result = run(source)
        assert result.error_class == "E1"
        assert result.output == []

    def test_exception_unwinds_calls(self):
        source = """
        class E { E() {} }
        class Main {
          static void deep(int n) { if (n == 0) { throw new E(); } deep(n - 1); }
          static void main(String[] args) {
            try { deep(5); } catch (E e) { print("unwound"); }
          }
        }
        """
        assert run(source).output == ["unwound"]

    def test_uncaught_reported(self):
        result = run_main_body("int[] a = new int[1]; print(a[5]);", stdlib=True)
        assert result.failed
        assert "ArrayIndexOutOfBoundsException" in result.error


class TestLimits:
    def test_fuel_exhaustion(self):
        result = run_main_body("while (true) { int x = 1; }", max_steps=10_000)
        assert result.timed_out

    def test_stack_overflow_becomes_mj_exception(self):
        source = """
        class Main {
          static int inf(int n) { return inf(n + 1); }
          static void main(String[] args) { print(inf(0)); }
        }
        """
        result = run(source, stdlib=True)
        assert result.error_class == "StackOverflowError"

    def test_step_count_reported(self):
        result = run_main_body("print(1);")
        assert result.steps > 0


class TestRunProgram:
    def test_convenience_wrapper(self):
        compiled = compile_source(
            'class Main { static void main(String[] args) { print("hi"); } }'
        )
        result = run_program(compiled.ast, compiled.table)
        assert result.output == ["hi"]
        assert not result.failed

    def test_program_without_main_raises(self):
        compiled = compile_source("class A {}")
        with pytest.raises(RuntimeError, match="no static main"):
            run_program(compiled.ast, compiled.table)
