"""Every shipped example must run cleanly and show its key output."""

from __future__ import annotations

import io
import runpy
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return buffer.getvalue()


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "FIRST NAME: Joh" in out
        assert "thin slice" in out
        assert "is in the thin slice: True" in out
        assert "excluded from the thin slice: True" in out

    def test_explain_aliasing(self):
        out = run_example("explain_aliasing.py")
        assert "ClosedException" in out
        assert "common object(s)" in out
        assert "g.close()" in out
        assert "governed by line" in out

    def test_tough_cast(self):
        out = run_example("tough_cast.py")
        assert "tough: True" in out
        assert "super(1)" in out  # the AddNode ctor write
        assert "guard at line" in out

    def test_debug_injected_bug(self):
        out = run_example("debug_injected_bug.py")
        assert "id: 42" in out and "id: 4" in out
        assert "<-- the bug!" in out
        assert "thin: found after inspecting" in out
        assert "traditional: found after inspecting" in out

    def test_dynamic_slicing(self):
        out = run_example("dynamic_slicing.py")
        assert "events recorded" in out
        assert "dynamic thin" in out
        assert "both contain the buggy substring" in out

    def test_impact_analysis(self):
        out = run_example("impact_analysis.py")
        assert "forward thin slice" in out
        assert "thin chop" in out
        assert "(explainer)" in out

    def test_nested_structures(self):
        out = run_example("nested_structures.py")
        assert "first order: anvil" in out
        assert "in thin slice: True" in out
        # The motivating gap is large.
        import re

        match = re.search(r"\((\d+(?:\.\d+)?)x\)", out)
        assert match and float(match.group(1)) >= 5.0

    @pytest.mark.slow
    def test_compare_slicers(self):
        out = run_example("compare_slicers.py")
        assert "debugging total" in out
        assert "tough-cast total" in out
        # aggregate ratios printed with the paper reference
        assert "(paper: 3.3x)" in out
