"""Sharded serving tier tests: routing, failover, aggregation, drills.

Most tests run the router over *in-process* daemon shards (each one a
real :class:`SliceServer` behind a real TCP listener) so the full
forwarding path — pooled connections, retry semantics, health
accounting — is exercised without subprocess cost.  The mid-stream
shard-kill acceptance drill at the bottom uses genuinely spawned shard
processes, because only a killable process proves the failover story.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.lang.source import marker_line
from repro.server.cache import AnalysisCache
from repro.server.client import ServerError, SliceClient
from repro.server.daemon import start_tcp_server
from repro.server.faults import FaultPlan
from repro.server.ring import HashRing
from repro.server.router import Router
from repro.server.shardpool import HEALTHY, UNHEALTHY, ShardPool
from repro.suite.loader import load_source
from tests.conftest import make_server


def seed_line(name: str, tag: str) -> int:
    return marker_line(load_source(name), "tag", tag)


def route(router: Router, method: str, request_id=1, **params):
    line = json.dumps({"id": request_id, "method": method, "params": params})
    return json.loads(router.handle_line(line))


class Tier:
    """N in-process daemon shards behind one router."""

    def __init__(self, shards: int = 2, **router_kwargs):
        self.backends: dict[str, tuple] = {}  # address -> (server, tcp, thread)
        self.pool = ShardPool(probe_interval_s=30.0)  # probes driven manually
        for _ in range(shards):
            instance = make_server(AnalysisCache())
            tcp_server, thread = start_tcp_server(instance)
            host, port = tcp_server.server_address[:2]
            self.pool.attach(host, port)
            self.backends[f"{host}:{port}"] = (instance, tcp_server, thread)
        self.router = Router(self.pool, **router_kwargs)

    def kill(self, address: str) -> None:
        """Stop a shard's listener so new dials are refused.  (A hard
        mid-stream process kill — broken pooled connections included —
        is the spawned-shard drill's job; in-process handler threads
        cannot be killed, so pooled connections are dropped here.)"""
        instance, tcp_server, _ = self.backends[address]
        tcp_server.shutdown()
        tcp_server.server_close()
        instance.close()
        self.pool.shard(address).close_connections()

    def close(self) -> None:
        self.router.shutting_down = True  # suppress background drains
        if self.router._thread is not None:
            self.router.stop()
        for instance, tcp_server, _ in self.backends.values():
            try:
                tcp_server.shutdown()
                tcp_server.server_close()
            except OSError:
                pass
            instance.close()
        self.pool.stop()


@pytest.fixture()
def tier():
    t = Tier(shards=2)
    yield t
    t.close()


# ----------------------------------------------------------------------
# Differential: routed mode must be indistinguishable from one daemon
# ----------------------------------------------------------------------


class TestDifferential:
    def test_slice_byte_identical_cold_and_warm(self, tier):
        """The acceptance bar: byte-identical slice results between
        single-daemon and routed modes, cold then warm."""
        single = make_server(AnalysisCache())
        try:
            for name in ("figure1", "figure2"):
                source = load_source(name)
                line = seed_line(name, "seed")
                for pass_name in ("cold", "warm"):
                    request = json.dumps(
                        {
                            "id": 1,
                            "method": "slice",
                            "params": {"source": source, "line": line},
                        }
                    )
                    direct = single.handle_line(request)
                    routed = tier.router.handle_line(request)
                    assert routed == direct, (
                        f"{name}/{pass_name}: routed response diverges"
                    )
        finally:
            single.close()

    def test_explain_why_chop_identical(self, tier):
        single = make_server(AnalysisCache())
        try:
            source = load_source("figure1")
            seed = seed_line("figure1", "seed")
            buggy = seed_line("figure1", "buggy")
            for method, params in (
                ("explain", {"source": source, "line": seed}),
                (
                    "why",
                    {
                        "source": source,
                        "source_line": buggy,
                        "sink_line": seed,
                    },
                ),
                (
                    "chop",
                    {
                        "source": source,
                        "source_line": buggy,
                        "sink_line": seed,
                    },
                ),
            ):
                request = json.dumps(
                    {"id": 3, "method": method, "params": params}
                )
                assert tier.router.handle_line(request) == single.handle_line(
                    request
                )
        finally:
            single.close()

    def test_error_responses_identical_modulo_endpoint(self, tier):
        single = make_server(AnalysisCache())
        try:
            request = json.dumps(
                {
                    "id": 5,
                    "method": "slice",
                    "params": {"source": load_source("figure2"), "line": "x"},
                }
            )
            direct = json.loads(single.handle_line(request))
            routed = json.loads(tier.router.handle_line(request))
            endpoint = routed["error"].pop("endpoint")
            assert endpoint in tier.backends
            assert routed == direct
        finally:
            single.close()


# ----------------------------------------------------------------------
# Routing: locality and key derivation
# ----------------------------------------------------------------------


class TestRouting:
    def test_same_source_always_hits_same_shard(self, tier):
        source = load_source("figure2")
        line = seed_line("figure2", "seed")
        first = route(tier.router, "slice", source=source, line=line)
        assert first["result"]["origin"] == "analyzed"
        for _ in range(3):
            again = route(tier.router, "slice", source=source, line=line)
            # A memory hit proves the request landed on the shard that
            # analyzed it — cache locality is the routing contract.
            assert again["result"]["origin"] == "memory"

    def test_distinct_sources_spread_across_shards(self, tier):
        base = load_source("figure2")
        owners = set()
        for salt in range(16):
            source = f"{base}\n// salt {salt}\n"
            key = tier.router._routing_key({"source": source})
            owners.add(tier.router.ring.owner(key))
        assert owners == set(tier.backends)

    def test_program_name_and_source_route_identically(self, tier):
        source = load_source("figure1")
        by_name = tier.router._routing_key({"program": "figure1"})
        by_source = tier.router._routing_key({"source": source})
        assert by_name == by_source

    def test_include_stdlib_changes_key(self, tier):
        source = load_source("figure2")
        with_std = tier.router._routing_key({"source": source})
        without = tier.router._routing_key(
            {"source": source, "include_stdlib": False}
        )
        assert with_std != without

    def test_keyless_request_gets_authoritative_validation(self, tier):
        """No derivable key (missing source): the daemon answers, and
        the relayed error names the shard it came from."""
        response = route(tier.router, "slice", line=3)
        assert response["ok"] is False
        assert response["error"]["type"] == "BadParams"
        assert response["error"]["endpoint"] in tier.backends

    def test_unknown_method_rejected_locally(self, tier):
        response = route(tier.router, "frobnicate")
        assert response["error"]["type"] == "UnknownMethod"


# ----------------------------------------------------------------------
# Batch fan-out
# ----------------------------------------------------------------------


class TestBatch:
    def _spanning_items(self, tier, count=6):
        """Items engineered to span both shards."""
        base = load_source("figure2")
        line = seed_line("figure2", "seed")
        items, owners = [], set()
        for salt in range(32):
            source = f"{base}\n// batch salt {salt}\n"
            key = tier.router._routing_key({"source": source})
            owners.add(tier.router.ring.owner(key))
            items.append({"source": source, "line": line})
            if len(items) >= count and len(owners) == 2:
                break
        assert len(owners) == 2
        return items

    def test_fan_out_merges_in_request_order(self, tier):
        items = self._spanning_items(tier)
        single = make_server(AnalysisCache())
        try:
            request = json.dumps(
                {"id": 9, "method": "slice_batch", "params": {"items": items}}
            )
            direct = json.loads(single.handle_line(request))
            routed = json.loads(tier.router.handle_line(request))
            # ``origin`` reflects per-server warm state: the items are
            # structurally identical, so after each server's first cold
            # analysis the fragment store serves the rest incrementally
            # — and *which* items are cold differs between one server
            # and a 2-shard tier.  Everything else must match exactly,
            # in request order.
            origins = {
                entry.pop("origin")
                for payload in (direct, routed)
                for entry in payload["result"]["results"]
            }
            assert origins <= {"analyzed", "memory", "disk", "incremental"}
            assert routed == direct
            assert routed["result"]["count"] == len(items)
            assert routed["result"]["distinct_programs"] == len(items)
        finally:
            single.close()

    def test_single_owner_batch_forwards_untouched(self, tier):
        source = load_source("figure2")
        line = seed_line("figure2", "seed")
        response = route(
            tier.router,
            "slice_batch",
            source=source,
            lines=[line, line],
        )
        assert response["ok"]
        assert response["result"]["count"] == 2
        assert response["result"]["distinct_programs"] == 1

    def test_invalid_batch_item_fails_whole_request(self, tier):
        items = self._spanning_items(tier, count=4)
        items[2] = {"source": items[2]["source"], "line": "nope"}
        response = route(tier.router, "slice_batch", items=items)
        assert response["ok"] is False
        assert response["error"]["type"] == "BadParams"

    def test_malformed_items_shape_matches_daemon(self, tier):
        single = make_server(AnalysisCache())
        try:
            for params in ({"items": []}, {"items": "nope"}, {}):
                request = json.dumps(
                    {"id": 2, "method": "slice_batch", "params": params}
                )
                direct = json.loads(single.handle_line(request))
                routed = json.loads(tier.router.handle_line(request))
                routed["error"].pop("endpoint", None)
                assert routed == direct
        finally:
            single.close()


# ----------------------------------------------------------------------
# Failover and health
# ----------------------------------------------------------------------


class TestFailover:
    def test_dead_owner_fails_over_with_zero_client_failures(self, tier):
        source = load_source("figure2")
        line = seed_line("figure2", "seed")
        key = tier.router._routing_key({"source": source})
        owner = tier.router.ring.owner(key)
        assert route(tier.router, "slice", source=source, line=line)["ok"]
        tier.kill(owner)
        response = route(tier.router, "slice", source=source, line=line)
        assert response["ok"], response
        assert tier.pool.shard(owner).state == UNHEALTHY
        assert tier.router.failover_total >= 1
        # The survivor analyzed it fresh — artifacts are per-shard.
        assert response["result"]["origin"] == "analyzed"

    def test_all_shards_dead_surfaces_retryable_error(self, tier):
        for address in list(tier.backends):
            tier.kill(address)
        response = route(
            tier.router,
            "slice",
            source=load_source("figure2"),
            line=seed_line("figure2", "seed"),
        )
        assert response["ok"] is False
        assert response["error"]["type"] == "Disconnected"
        assert "endpoint" in response["error"]

    def test_probe_demotes_dead_shard_and_health_reports_it(self, tier):
        victim = sorted(tier.backends)[0]
        tier.kill(victim)
        tier.pool.probe_all()
        payload = route(tier.router, "health")["result"]
        assert payload["role"] == "router"
        assert payload["healthy"] is True  # one survivor keeps the tier up
        assert payload["healthy_shards"] == 1
        assert payload["shards"][victim]["state"] == UNHEALTHY
        assert payload["shards"][victim]["last_error"]

    def test_recovered_shard_promoted_by_next_probe(self, tier):
        address = sorted(tier.backends)[0]
        tier.pool.note_failure(address, "synthetic blip", definitely_down=True)
        assert tier.pool.shard(address).state == UNHEALTHY
        tier.pool.probe_all()  # the shard is actually alive
        assert tier.pool.shard(address).state == HEALTHY
        payload = route(tier.router, "health")["result"]
        assert payload["healthy_shards"] == 2

    def test_unhealthy_shard_still_last_resort(self, tier):
        """Marked unhealthy but actually alive (a blip): the router
        prefers the healthy shard, but a key owned by the blipped one
        still answers — unhealthy is a preference, not a ban."""
        for address in tier.backends:
            tier.pool.note_failure(address, "blip", definitely_down=True)
        response = route(
            tier.router,
            "slice",
            source=load_source("figure2"),
            line=seed_line("figure2", "seed"),
        )
        assert response["ok"]

    def test_stats_aggregates_router_and_shards(self, tier):
        source = load_source("figure2")
        line = seed_line("figure2", "seed")
        route(tier.router, "slice", source=source, line=line)
        payload = route(tier.router, "stats")["result"]
        assert payload["role"] == "router"
        assert set(payload["shards"]) == set(tier.backends)
        assert payload["router"]["forwarded_total"] >= 1
        assert payload["methods"]["slice"]["count"] == 1
        assert sum(
            s.get("requests_total", 0) for s in payload["shards"].values()
        ) >= 1

    def test_per_program_stats_still_routed(self, tier):
        """``stats`` *with* a source resolves per-program statistics on
        the owning shard, not the aggregate view."""
        payload = route(
            tier.router, "stats", source=load_source("figure2")
        )["result"]
        assert "sdg_statements" in payload


# ----------------------------------------------------------------------
# The asyncio frontend (TCP)
# ----------------------------------------------------------------------


class TestAsyncFrontend:
    def test_tcp_roundtrip_and_endpoint_attribution(self, tier):
        host, port = tier.router.start()
        with SliceClient.connect(host, port) as client:
            assert client.ping()["role"] == "router"
            line = seed_line("figure2", "seed")
            result = client.slice(load_source("figure2"), line)
            assert result["line_count"] > 0
            with pytest.raises(ServerError) as err:
                client.request("slice", source=load_source("figure2"), line="x")
            # The structured error names the *shard*, not the router.
            assert err.value.error_type == "BadParams"
            assert err.value.endpoint in tier.backends
            assert err.value.endpoint != f"{host}:{port}"

    def test_oversized_line_answered_and_connection_survives(self):
        tier = Tier(shards=1, line_limit=4096)
        try:
            host, port = tier.router.start()
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.settimeout(10)
                reader = sock.makefile("r", encoding="utf-8", newline="\n")
                sock.sendall(b"x" * 8192 + b"\n")
                response = json.loads(reader.readline())
                assert response["ok"] is False
                assert response["error"]["type"] == "Protocol"
                assert response["id"] is None
                # Framing recovered: the next request works.
                sock.sendall(
                    json.dumps({"id": 2, "method": "ping"}).encode() + b"\n"
                )
                response = json.loads(reader.readline())
                assert response["ok"] and response["result"]["pong"]
        finally:
            tier.close()

    def test_admission_control_sheds_overloaded(self):
        plan = FaultPlan(shard_slow_s=0.5)
        tier = Tier(shards=1, max_inflight=1, max_queue=0, fault_plan=plan)
        try:
            host, port = tier.router.start()
            results = []

            def call():
                with socket.create_connection((host, port), timeout=10) as s:
                    s.settimeout(10)
                    reader = s.makefile("r", encoding="utf-8", newline="\n")
                    s.sendall(
                        json.dumps(
                            {
                                "id": 1,
                                "method": "slice",
                                "params": {
                                    "source": load_source("figure2"),
                                    "line": seed_line("figure2", "seed"),
                                },
                            }
                        ).encode()
                        + b"\n"
                    )
                    results.append(json.loads(reader.readline()))

            threads = [threading.Thread(target=call) for _ in range(3)]
            for t in threads:
                t.start()
                time.sleep(0.05)  # ensure the first occupies the slot
            for t in threads:
                t.join(timeout=30)
            shed = [
                r
                for r in results
                if not r["ok"] and r["error"]["type"] == "Overloaded"
            ]
            served = [r for r in results if r["ok"]]
            assert served, results
            assert shed, results
            # Introspection bypasses admission even at capacity.
            with SliceClient.connect(host, port) as client:
                assert client.health()["role"] == "router"
        finally:
            tier.close()

    def test_shutdown_drains_and_closes(self, tier):
        host, port = tier.router.start()
        with SliceClient.connect(host, port) as client:
            assert client.shutdown() == {"stopping": True}
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if not tier.router._thread.is_alive():
                break
            time.sleep(0.05)
        assert not tier.router._thread.is_alive()
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=1).close()


# ----------------------------------------------------------------------
# The acceptance drill: killing a real shard mid-stream
# ----------------------------------------------------------------------


class TestShardKillDrill:
    def test_mid_stream_kill_zero_failed_requests(self, tmp_path):
        """With 2 spawned shards serving a request stream, a hard kill
        of one shard mid-stream causes zero failed client requests and
        the aggregated health reports the death within one probe."""
        pool = ShardPool(probe_interval_s=0.2)
        pool.spawn_local(
            2, ["--no-disk-cache", "--workers", "1", "--timeout", "30"]
        )
        plan = FaultPlan(shard_kills=1)
        router = Router(pool, fault_plan=plan)
        try:
            pool.probe_all()
            host, port = router.start()
            pool.start_probing()
            base = load_source("figure2")
            line = seed_line("figure2", "seed")
            with SliceClient.connect(host, port) as client:
                sources = [f"{base}\n// stream {i}\n" for i in range(4)]
                ok = 0
                for round_index in range(3):
                    for source in sources:
                        result = client.slice(source, line)
                        assert result["line_count"] > 0
                        ok += 1
                assert ok == 12
                assert plan.shard_kills == 0  # the drill fired
                assert router.failover_total >= 1
                # The probe notices the corpse within its interval,
                # then respawns it on the same port: the tier heals to
                # 2/2 healthy with one recorded resurrection.
                deadline = time.monotonic() + 30
                respawned = None
                while time.monotonic() < deadline:
                    payload = client.health()
                    respawned = [
                        a
                        for a, s in payload["shards"].items()
                        if s.get("respawns", 0) >= 1
                    ]
                    if payload["healthy_shards"] == 2 and respawned:
                        break
                    time.sleep(0.1)
                assert payload["healthy_shards"] == 2
                assert payload["healthy"] is True
                assert len(respawned) == 1
                # The reborn shard kept its ring slot: the same key
                # stream lands on it again and every request succeeds.
                reborn = pool.shard(respawned[0])
                before = reborn.forwarded_total
                for source in sources:
                    assert client.slice(source, line)["line_count"] > 0
                assert reborn.forwarded_total > before
        finally:
            router.stop()


class TestRingViewInPayloads:
    def test_health_reports_ring_ownership(self, tier):
        payload = route(tier.router, "health")["result"]
        shares = payload["ring"]["ownership"]
        assert set(shares) == set(tier.backends)
        assert abs(sum(shares.values()) - 1.0) < 0.01
        assert payload["ring"]["replicas"] == 64

    def test_router_ring_matches_standalone_ring(self, tier):
        standalone = HashRing(tier.pool.addresses(), replicas=64)
        source = load_source("figure1")
        key = tier.router._routing_key({"source": source})
        assert standalone.owner(key) == tier.router.ring.owner(key)
