"""Context-sensitive tabulation slicer tests (§5.3)."""

from __future__ import annotations

import pytest

from repro.analysis.modref import compute_modref
from repro.analysis.pointsto import solve_points_to
from repro.frontend import compile_source
from repro.lang.source import find_markers
from repro.sdg.sdg import build_sdg
from repro.slicing.tabulation import (
    TabulationBudgetExceeded,
    TabulationSlicer,
    THIN_SAME_LEVEL,
    TRADITIONAL_SAME_LEVEL,
)
from repro.slicing.traditional import TraditionalSlicer


def analyze_cs(source: str, stdlib: bool = False):
    compiled = compile_source(source, include_stdlib=stdlib)
    pts = solve_points_to(compiled.ir)
    modref = compute_modref(compiled.ir, pts)
    sdg = build_sdg(compiled, pts, heap_mode="params", modref=modref)
    return compiled, pts, sdg


UNREALIZABLE = """
class Main {
  static int id(int x) { return x; }
  static void main(String[] args) {
    int a = args.length;
    int b = 1000;
    int p = id(a);
    int q = id(b);      //@tag:q
    print(p);           //@tag:seedp
    print(q);
  }
}
class Dummy {
  static int unused() { return 0; }
}
"""


class TestContextSensitivity:
    def test_unrealizable_path_excluded(self):
        """Slicing print(p) must not reach the q = id(b) call: a
        context-insensitive slicer conflates the two id() calls, the
        tabulation slicer does not."""
        compiled, pts, sdg = analyze_cs(UNREALIZABLE)
        t = find_markers(compiled.source.text)["tag"]
        cs = TabulationSlicer(compiled, sdg, TRADITIONAL_SAME_LEVEL)
        result = cs.slice_from_line(t["seedp"])
        assert t["q"] not in result.lines

    def test_context_insensitive_includes_unrealizable(self):
        compiled = compile_source(UNREALIZABLE)
        pts = solve_points_to(compiled.ir)
        sdg = build_sdg(compiled, pts, heap_mode="direct")
        t = find_markers(compiled.source.text)["tag"]
        result = TraditionalSlicer(compiled, sdg).slice_from_line(t["seedp"])
        assert t["q"] in result.lines

    def test_cs_slice_subset_of_ci_slice_lines(self):
        compiled, pts, sdg_cs = analyze_cs(UNREALIZABLE)
        sdg_ci = build_sdg(compiled, pts, heap_mode="direct")
        t = find_markers(compiled.source.text)["tag"]
        cs = TabulationSlicer(compiled, sdg_cs, TRADITIONAL_SAME_LEVEL)
        ci = TraditionalSlicer(compiled, sdg_ci)
        assert cs.slice_from_line(t["seedp"]).lines <= ci.slice_from_line(
            t["seedp"]
        ).lines

    def test_summaries_computed_once(self):
        compiled, pts, sdg = analyze_cs(UNREALIZABLE)
        slicer = TabulationSlicer(compiled, sdg, TRADITIONAL_SAME_LEVEL)
        slicer.compute_summaries()
        count = slicer.path_edge_count
        slicer.compute_summaries()
        assert slicer.path_edge_count == count
        assert count > 0


HEAP_FLOW = """
class Box { int v; }
class Main {
  static void write(Box b, int x) { b.v = x; }     //@tag:store
  static int read(Box b) { return b.v; }           //@tag:load
  static void main(String[] args) {
    Box b = new Box();
    write(b, args.length);                         //@tag:writecall
    print(read(b));                                //@tag:seed
  }
}
"""


class TestHeapParameters:
    def test_heap_flow_crosses_procedures(self):
        compiled, pts, sdg = analyze_cs(HEAP_FLOW)
        t = find_markers(compiled.source.text)["tag"]
        cs_thin = TabulationSlicer(compiled, sdg, THIN_SAME_LEVEL)
        result = cs_thin.slice_from_line(t["seed"])
        assert t["store"] in result.lines
        assert t["load"] in result.lines

    def test_thin_same_level_excludes_control(self):
        compiled, pts, sdg = analyze_cs(
            """
            class Main {
              static void main(String[] args) {
                int x = 0;
                if (args.length > 0) {      //@tag:cond
                  x = 1;
                }
                print(x);                   //@tag:seed
              }
            }
            """
        )
        t = find_markers(compiled.source.text)["tag"]
        thin = TabulationSlicer(compiled, sdg, THIN_SAME_LEVEL)
        trad = TabulationSlicer(compiled, sdg, TRADITIONAL_SAME_LEVEL)
        assert t["cond"] not in thin.slice_from_line(t["seed"]).lines
        assert t["cond"] in trad.slice_from_line(t["seed"]).lines

    def test_cs_thin_subset_of_cs_traditional(self):
        compiled, pts, sdg = analyze_cs(HEAP_FLOW)
        t = find_markers(compiled.source.text)["tag"]
        thin = TabulationSlicer(compiled, sdg, THIN_SAME_LEVEL)
        trad = TabulationSlicer(compiled, sdg, TRADITIONAL_SAME_LEVEL)
        assert (
            thin.slice_from_line(t["seed"]).lines
            <= trad.slice_from_line(t["seed"]).lines
        )


class TestRecursionAndBudget:
    RECURSIVE = """
    class Main {
      static int fact(int n) {
        if (n <= 1) { return 1; }
        return n * fact(n - 1);
      }
      static void main(String[] args) {
        print(fact(args.length));   //@tag:seed
      }
    }
    """

    def test_recursion_terminates(self):
        compiled, pts, sdg = analyze_cs(self.RECURSIVE)
        t = find_markers(compiled.source.text)["tag"]
        slicer = TabulationSlicer(compiled, sdg, TRADITIONAL_SAME_LEVEL)
        result = slicer.slice_from_line(t["seed"])
        assert result.lines  # completes and is non-trivial

    def test_budget_exceeded_raises(self):
        compiled, pts, sdg = analyze_cs(HEAP_FLOW)
        slicer = TabulationSlicer(
            compiled, sdg, TRADITIONAL_SAME_LEVEL, max_path_edges=2
        )
        with pytest.raises(TabulationBudgetExceeded):
            slicer.compute_summaries()

    @pytest.mark.parametrize(
        "program,seed_tag",
        [
            ("jtopas", "printnums"),
            ("xmlsec", "seedmismatch"),
            ("rules", "printfan"),
            ("raytrace", "printrow"),
        ],
    )
    def test_cs_traditional_subset_of_ci_on_suite(self, program, seed_tag):
        """Realizable paths are a subset of all paths: for every suite
        program, the CS traditional slice's lines are contained in the
        CI traditional slice's."""
        from repro.lang.source import marker_line
        from repro.suite.loader import load_source

        source = load_source(program)
        compiled = compile_source(source, program, include_stdlib=True)
        pts = solve_points_to(compiled.ir)
        modref = compute_modref(compiled.ir, pts)
        sdg_cs = build_sdg(compiled, pts, heap_mode="params", modref=modref)
        sdg_ci = build_sdg(compiled, pts, heap_mode="direct")
        seed = marker_line(compiled.source.text, "tag", seed_tag)
        cs = TabulationSlicer(compiled, sdg_cs, TRADITIONAL_SAME_LEVEL)
        ci = TraditionalSlicer(compiled, sdg_ci)
        cs_lines = cs.slice_from_line(seed).lines
        ci_lines = ci.slice_from_line(seed).lines
        # Heap actual-in/out nodes sit on call lines the direct mode may
        # not surface; compare against the CI closure plus those call
        # lines' statements (still a meaningful containment check).
        extra = cs_lines - ci_lines
        for line in extra:
            text = compiled.source.line_text(line)
            assert "(" in text, (
                f"{program}: CS-only line {line} ({text.strip()!r}) is "
                "not a call statement"
            )

    def test_figure_programs_slice_cleanly(self, figure4):
        source, compiled, pts, _ = figure4
        modref = compute_modref(compiled.ir, pts)
        sdg = build_sdg(compiled, pts, heap_mode="params", modref=modref)
        t = find_markers(source)["tag"]
        slicer = TabulationSlicer(compiled, sdg, THIN_SAME_LEVEL)
        result = slicer.slice_from_line(t["seed"])
        assert t["close"] in result.lines
        assert t["setopen"] in result.lines
