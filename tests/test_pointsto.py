"""Points-to analysis and call graph tests."""

from __future__ import annotations

from repro.analysis.heapmodel import (
    ARGS_ARRAY_OBJECT,
    STRING_OBJECT,
    StaticKey,
    make_object,
    AbstractObject,
)
from repro.analysis.pointsto import solve_points_to
from repro.frontend import compile_source


def analyze(source: str, stdlib: bool = False, containers=None):
    compiled = compile_source(source, include_stdlib=stdlib)
    if containers is None:
        pts = solve_points_to(compiled.ir)
    else:
        pts = solve_points_to(compiled.ir, containers=containers)
    return compiled, pts


def var_named(compiled, function: str, prefix: str) -> str:
    fn = compiled.ir.functions[function]
    names = {v for i in fn.instructions() if (v := i.defined_var())}
    names |= set(fn.params)
    matches = sorted(n for n in names if n.startswith(prefix))
    assert matches, f"no var starting with {prefix} in {function}"
    return matches[0]


def classes_of(objs) -> set[str]:
    return {o.class_name for o in objs}


class TestBasics:
    def test_allocation_flows_to_local(self):
        compiled, pts = analyze(
            "class A {} class Main { static void main(String[] args) {"
            " A a = new A(); print(a); } }"
        )
        objs = pts.points_to("Main.main", var_named(compiled, "Main.main", "a~"))
        assert classes_of(objs) == {"A"}

    def test_copy_propagation(self):
        compiled, pts = analyze(
            "class A {} class Main { static void main(String[] args) {"
            " A a = new A(); A b = a; print(b); } }"
        )
        a = pts.points_to("Main.main", var_named(compiled, "Main.main", "a~"))
        b = pts.points_to("Main.main", var_named(compiled, "Main.main", "b~"))
        assert a == b

    def test_field_flow(self):
        compiled, pts = analyze(
            "class Box { Object v; } class A {}"
            "class Main { static void main(String[] args) {"
            " Box box = new Box(); box.v = new A(); Object o = box.v; print(o); } }"
        )
        o = pts.points_to("Main.main", var_named(compiled, "Main.main", "o~"))
        assert classes_of(o) == {"A"}

    def test_distinct_objects_not_conflated_through_distinct_boxes(self):
        compiled, pts = analyze(
            "class Box { Object v; } class A {} class B {}"
            "class Main { static void main(String[] args) {"
            " Box b1 = new Box(); Box b2 = new Box();"
            " b1.v = new A(); b2.v = new B();"
            " Object x = b1.v; Object y = b2.v; print(x); print(y); } }"
        )
        x = pts.points_to("Main.main", var_named(compiled, "Main.main", "x~"))
        y = pts.points_to("Main.main", var_named(compiled, "Main.main", "y~"))
        assert classes_of(x) == {"A"}
        assert classes_of(y) == {"B"}

    def test_aliased_boxes_conflate(self):
        compiled, pts = analyze(
            "class Box { Object v; } class A {} class B {}"
            "class Main { static void main(String[] args) {"
            " Box b1 = new Box(); Box b2 = b1;"
            " b1.v = new A(); b2.v = new B();"
            " Object x = b1.v; print(x); } }"
        )
        x = pts.points_to("Main.main", var_named(compiled, "Main.main", "x~"))
        assert classes_of(x) == {"A", "B"}

    def test_static_field_flow(self):
        compiled, pts = analyze(
            "class A {} class G { static Object HELD; }"
            "class Main { static void main(String[] args) {"
            " G.HELD = new A(); Object o = G.HELD; print(o); } }"
        )
        o = pts.points_to("Main.main", var_named(compiled, "Main.main", "o~"))
        assert classes_of(o) == {"A"}
        assert classes_of(pts.static_points_to("G", "HELD")) == {"A"}

    def test_array_contents(self):
        compiled, pts = analyze(
            "class A {} class Main { static void main(String[] args) {"
            " Object[] xs = new Object[2]; xs[0] = new A();"
            " Object o = xs[1]; print(o); } }"
        )
        o = pts.points_to("Main.main", var_named(compiled, "Main.main", "o~"))
        assert classes_of(o) == {"A"}  # array smashing: one cell

    def test_string_constants_are_one_object(self):
        compiled, pts = analyze(
            "class Main { static void main(String[] args) {"
            ' String s = "x"; Object o = s; print(o); } }'
        )
        o = pts.points_to("Main.main", var_named(compiled, "Main.main", "o~"))
        assert o == {STRING_OBJECT}

    def test_main_args_seeded(self):
        compiled, pts = analyze(
            "class Main { static void main(String[] args) {"
            " String s = args[0]; print(s); } }"
        )
        args = pts.points_to("Main.main", "args")
        assert ARGS_ARRAY_OBJECT in args
        s = pts.points_to("Main.main", var_named(compiled, "Main.main", "s~"))
        assert STRING_OBJECT in s


class TestCallsAndDispatch:
    SOURCE = """
    class A { A self() { return this; } }
    class B extends A { A self() { return new A(); } }
    class Main {
      static void main(String[] args) {
        A r1 = pick(true).self();
        print(r1);
      }
      static A pick(boolean b) {
        if (b) { return new A(); }
        return new B();
      }
    }
    """

    def test_on_the_fly_call_graph(self):
        compiled, pts = analyze(self.SOURCE)
        reachable = pts.call_graph.reachable_functions()
        assert "A.self" in reachable
        assert "B.self" in reachable

    def test_return_values_merge_targets(self):
        compiled, pts = analyze(self.SOURCE)
        r1 = pts.points_to("Main.main", var_named(compiled, "Main.main", "r1~"))
        # A.self (receiver: the A from pick) returns that receiver, and
        # the B receiver dispatches to the B.self override, which returns
        # a fresh A — so every possible result is an A.
        assert classes_of(r1) == {"A"}

    def test_receiver_precision(self):
        # 'this' in a callee only points to actual receivers.
        source = """
        class A { Object id(Object x) { return x; } }
        class P {} class Q {}
        class Main { static void main(String[] args) {
          A a = new A();
          Object p = a.id(new P());
          print(p);
        } }
        """
        compiled, pts = analyze(source)
        this_pts = pts.points_to("A.id", "this")
        assert classes_of(this_pts) == {"A"}

    def test_cast_filters_types(self):
        source = """
        class A {} class B {}
        class Main { static void main(String[] args) {
          Object o = pick(args.length);
          A a = (A) o;
          print(a);
        }
        static Object pick(int n) { if (n > 0) { return new A(); } return new B(); } }
        """
        compiled, pts = analyze(source)
        a = pts.points_to("Main.main", var_named(compiled, "Main.main", "a~"))
        assert classes_of(a) == {"A"}

    def test_unreachable_function_not_analyzed(self):
        compiled, pts = analyze(
            "class Main { static void main(String[] args) { print(1); }"
            " static void dead() { print(2); } }"
        )
        assert "Main.dead" not in pts.call_graph.reachable_functions()

    def test_clinit_is_root(self):
        compiled, pts = analyze(
            "class A {} class G { static Object X = new A(); }"
            "class Main { static void main(String[] args) { print(1); } }"
        )
        assert "G.<clinit>" in pts.call_graph.reachable_functions()
        assert classes_of(pts.static_points_to("G", "X")) == {"A"}


class TestObjectSensitivity:
    TWO_VECTORS = """
    class A {} class B {}
    class Main {
      static void main(String[] args) {
        Vector v1 = new Vector();
        Vector v2 = new Vector();
        v1.add(new A());
        v2.add(new B());
        Object x = v1.get(0);
        Object y = v2.get(0);
        print(x); print(y);
      }
    }
    """

    def test_containers_keep_contents_separate(self):
        compiled, pts = analyze(self.TWO_VECTORS, stdlib=True)
        x = pts.points_to("Main.main", var_named(compiled, "Main.main", "x~"))
        y = pts.points_to("Main.main", var_named(compiled, "Main.main", "y~"))
        assert classes_of(x) == {"A"}
        assert classes_of(y) == {"B"}

    def test_no_sensitivity_merges_contents(self):
        compiled, pts = analyze(self.TWO_VECTORS, stdlib=True, containers=frozenset())
        x = pts.points_to("Main.main", var_named(compiled, "Main.main", "x~"))
        assert classes_of(x) == {"A", "B"}

    def test_cloning_increases_call_graph_nodes(self):
        compiled, pts_sens = analyze(self.TWO_VECTORS, stdlib=True)
        _, pts_insens = analyze(self.TWO_VECTORS, stdlib=True, containers=frozenset())
        assert pts_sens.call_graph.node_count() > pts_insens.call_graph.node_count()
        # ...but the set of reachable *functions* is the same.
        assert (
            pts_sens.call_graph.reachable_functions()
            == pts_insens.call_graph.reachable_functions()
        )

    def test_hashmap_values_separate_per_map(self):
        source = """
        class A {} class B {}
        class Main {
          static void main(String[] args) {
            HashMap m1 = new HashMap();
            HashMap m2 = new HashMap();
            m1.put("k", new A());
            m2.put("k", new B());
            Object x = m1.get("k");
            print(x);
          }
        }
        """
        compiled, pts = analyze(source, stdlib=True)
        x = pts.points_to("Main.main", var_named(compiled, "Main.main", "x~"))
        assert classes_of(x) == {"A"}

    def test_context_depth_is_bounded(self):
        compiled, pts = analyze(self.TWO_VECTORS, stdlib=True)
        for objs in pts.pts.values():
            for obj in objs:
                assert obj.depth() <= 2


class TestHeapModel:
    def test_abstract_object_truncation(self):
        base = AbstractObject(1, "A", "object")
        ctx1 = make_object(2, "B", "object", base, max_depth=2)
        ctx2 = make_object(3, "C", "object", ctx1, max_depth=2)
        assert ctx2.depth() <= 2

    def test_base_strips_context(self):
        base = AbstractObject(1, "A", "object")
        obj = AbstractObject(2, "B", "object", base)
        assert obj.base().context is None
        assert obj.base().site == 2

    def test_static_key_identity(self):
        assert StaticKey("A", "f") == StaticKey("A", "f")
        assert StaticKey("A", "f") != StaticKey("A", "g")
