"""Suite program tests: every program runs, every bug manifests, every
marker resolves — the repo's reproduction of the SIR protocol."""

from __future__ import annotations

import pytest

from repro.frontend import compile_source
from repro.lang.source import find_markers
from repro.suite.bugs import BUGS, bugs_for_table2, excluded_bugs, resolve_task
from repro.suite.casts import all_casts, resolve_cast_lines
from repro.suite.harness import SUITE_PROGRAMS, bug_manifests, run_source
from repro.suite.loader import load_source, program_names


def run_suite_program(name: str, args: list[str]):
    return run_source(load_source(name), name, args)


class TestLoader:
    def test_all_programs_listed(self):
        names = program_names()
        for expected in SUITE_PROGRAMS:
            assert expected in names
        for figure in ("figure1", "figure2", "figure4", "figure5"):
            assert figure in names
        assert "stdlib" not in names

    def test_unknown_program_raises(self):
        with pytest.raises(FileNotFoundError):
            load_source("does-not-exist")


class TestProgramsCompileAndRun:
    @pytest.mark.parametrize("name", SUITE_PROGRAMS)
    def test_compiles_with_stdlib(self, name):
        compiled = compile_source(load_source(name), name, include_stdlib=True)
        assert compiled.ir.functions

    def test_minixml_output(self):
        result = run_suite_program("minixml", ["<a id='42'><b>hi</b></a>"])
        assert not result.failed
        assert "render: <a id=42><b>hi</b></a>" in result.output
        assert "id: 42" in result.output

    def test_minixml_rejects_mismatched_tags(self):
        result = run_suite_program("minixml", ["<a></b>"])
        assert result.error_class == "IllegalStateException"

    def test_jtopas_output(self):
        result = run_suite_program("jtopas", ['ab 12 "q" +'])
        assert not result.failed
        assert "words: 1" in result.output
        assert "numbers: 1" in result.output

    def test_minibuild_runs_targets_in_dependency_order(self):
        script = "target b = echo B; target a : b = echo A; target all : a = echo ALL"
        result = run_suite_program("minibuild", [script])
        assert not result.failed
        bodies = [line for line in result.output if line.startswith("[")]
        assert bodies == ["[b:1] echo B", "[a:1] echo A", "[all:1] echo ALL"]

    def test_minibuild_expands_properties(self):
        script = "prop greeting hi; target all = echo ${greeting} there"
        result = run_suite_program("minibuild", [script])
        assert any("echo hi there" in line for line in result.output)

    def test_xmlsec_verifies_canonical_equivalence(self):
        result = run_suite_program("xmlsec", ["Hello XML  Security", "7301"])
        assert result.output.count("VERIFIED 7301") == 2

    def test_xmlsec_rejects_wrong_hash(self):
        result = run_suite_program("xmlsec", ["Hello XML  Security", "1234"])
        assert any("MISMATCH" in line for line in result.output)

    def test_rules_fires_chained_rules(self):
        result = run_suite_program("rules", [])
        assert "assert fan=1" in result.output
        assert "print comfortable" in result.output
        assert "fan: 1" in result.output

    def test_minijavac_constant_folds(self):
        result = run_suite_program("minijavac", ["x = 1 + 2 * 3"])
        assert result.output[0] == "result: 7"
        assert "push 7" in result.output  # folded, not add/mul sequence

    def test_minijavac_evaluates_variables(self):
        result = run_suite_program("minijavac", ["x = 5; y = x * x - 5"])
        assert result.output[0] == "result: 20"

    def test_parsegen_first_sets(self):
        result = run_suite_program("parsegen", ["S -> a B | c ; B -> b | _"])
        assert any(line.startswith("B?: b") for line in result.output)
        assert any(line.startswith("S: a c") for line in result.output)

    def test_parsegen_follow_sets(self):
        result = run_suite_program("parsegen", ["S -> a B ; B -> b"])
        # FOLLOW(S) = {$}; FOLLOW(B) = FOLLOW(S) = {$}.
        assert any(line.startswith("S:") and line.endswith("/ $")
                   for line in result.output)
        assert any(line.startswith("B:") and line.endswith("/ $")
                   for line in result.output)

    def test_parsegen_reports_ll1_conflicts(self):
        result = run_suite_program("parsegen", ["S -> a B | a C ; B -> b ; C -> c"])
        assert "conflict: S" in result.output

    def test_minixml_query_engine(self):
        result = run_suite_program(
            "minixml", ["<a id='42'><b>hi</b><c x='1'></c></a>"]
        )
        assert "query: hi" in result.output
        assert "qattr: 1" in result.output

    def test_raytrace_renders_deterministic_image(self):
        result = run_suite_program("raytrace", [])
        assert len(result.output) == 8
        assert all(len(row) == 16 for row in result.output)
        assert any("o" in row for row in result.output)
        assert any("*" in row for row in result.output)

    def test_figure1_shows_the_bug(self):
        result = run_suite_program("figure1", ["John Doe"])
        assert result.output == ["FIRST NAME: Joh"]

    def test_figure4_throws_closed_exception(self):
        result = run_suite_program("figure4", [])
        assert result.error_class == "ClosedException"

    def test_figure5_simplifies(self):
        result = run_suite_program("figure5", [])
        assert result.output == ["5", "20", "7"]


class TestBugRegistry:
    def test_thirteen_table2_rows(self):
        # Matches the paper's Table 2, which has 13 usable bugs.
        assert len(bugs_for_table2()) == 13

    def test_excluded_bugs_are_xmlsec_internals(self):
        excluded = excluded_bugs()
        assert len(excluded) == 5
        assert all(b.program == "xmlsec" for b in excluded)

    @pytest.mark.parametrize("bug_id", sorted(BUGS))
    def test_bug_manifests(self, bug_id):
        assert bug_manifests(BUGS[bug_id])

    @pytest.mark.parametrize("bug_id", sorted(BUGS))
    def test_buggy_source_differs_and_compiles(self, bug_id):
        bug = BUGS[bug_id]
        fixed = load_source(bug.program)
        buggy = bug.apply()
        assert buggy != fixed
        compiled = compile_source(buggy, bug.bug_id, include_stdlib=True)
        assert compiled.ir.functions

    @pytest.mark.parametrize("bug_id", sorted(BUGS))
    def test_markers_resolve(self, bug_id):
        bug = BUGS[bug_id]
        compiled = compile_source(bug.apply(), bug.bug_id, include_stdlib=True)
        task = resolve_task(bug, compiled.source.text)
        assert task.seed > 0
        assert task.desired
        assert len(task.control_seeds) <= bug.n_control or bug.n_control >= len(
            bug.control_markers
        )

    def test_apply_preserves_marker(self):
        bug = BUGS["minixml-2"]
        buggy = bug.apply()
        assert f"//@tag:{bug.marker}" in buggy
        assert "pos - 1" in buggy

    def test_apply_unknown_marker_raises(self):
        from repro.suite.bugs import InjectedBug

        bogus = InjectedBug(
            bug_id="x",
            program="minixml",
            marker="no-such-marker",
            buggy_code="x = 1;",
            seed_marker="printid",
            desired_markers=("printid",),
            args=(),
        )
        with pytest.raises(KeyError):
            bogus.apply()


class TestCastRegistry:
    def test_twentytwo_table3_rows(self):
        # The paper's Table 3 also has 22 rows (2 mtrt + 6 jess + 4 javac
        # + 10 jack).
        assert len(all_casts()) == 22

    def test_program_distribution(self):
        per_program = {}
        for cast in all_casts():
            per_program[cast.program] = per_program.get(cast.program, 0) + 1
        assert per_program == {
            "raytrace": 2,
            "rules": 6,
            "minijavac": 4,
            "parsegen": 10,
        }

    @pytest.mark.parametrize("cast", all_casts(), ids=lambda c: c.cast_id)
    def test_cast_markers_resolve(self, cast):
        compiled = compile_source(
            load_source(cast.program), cast.program, include_stdlib=True
        )
        cast_line, desired, control = resolve_cast_lines(
            cast, compiled.compiled_text if hasattr(compiled, "compiled_text")
            else compiled.source.text
        )
        assert cast_line > 0
        assert desired

    @pytest.mark.parametrize("cast", all_casts(), ids=lambda c: c.cast_id)
    def test_cast_line_contains_a_cast(self, cast):
        from repro.ir import instructions as ins

        compiled = compile_source(
            load_source(cast.program), cast.program, include_stdlib=True
        )
        cast_line, _, _ = resolve_cast_lines(cast, compiled.source.text)
        instrs = compiled.instructions_at_line(cast_line)
        assert any(isinstance(i, ins.Cast) for i in instrs)


class TestMarkers:
    @pytest.mark.parametrize("name", SUITE_PROGRAMS)
    def test_tags_unique_per_program(self, name):
        source = load_source(name)
        markers = find_markers(source).get("tag", {})
        assert markers  # every program carries tags
        # find_markers keeps first occurrence; verify no duplicate tag
        # lines by re-scanning.
        seen = {}
        for lineno, line in enumerate(source.splitlines(), 1):
            for part in line.split("//@tag:")[1:]:
                tag = part.split()[0]
                assert tag not in seen, f"duplicate tag {tag}"
                seen[tag] = lineno
