"""TreeMap (nested-structure) tests: stdlib behaviour plus the paper's
introduction scenario (hash table → trees → lists)."""

from __future__ import annotations

import pytest

from repro.frontend import compile_source
from repro.interp.interpreter import run_program
from repro.lang.source import marker_line
from tests.conftest import compile_and_analyze
from repro.slicing.thin import ThinSlicer
from repro.slicing.traditional import TraditionalSlicer


def run_main(body: str, args=None):
    source = (
        "class Main { static void main(String[] args) { " + body + " } }"
    )
    compiled = compile_source(source, include_stdlib=True)
    return run_program(compiled.ast, compiled.table, args or [])


class TestTreeMapSemantics:
    def test_add_and_get_first(self):
        out = run_main(
            'TreeMap t = new TreeMap(); t.add("b", "two"); t.add("a", "one");'
            ' t.add("c", "three");'
            ' print(t.getFirst("a")); print(t.getFirst("b"));'
            ' print(t.getFirst("c"));'
        )
        assert out.output == ["one", "two", "three"]

    def test_multimap_keeps_insertion_order_per_key(self):
        out = run_main(
            'TreeMap t = new TreeMap(); t.add("k", "first"); t.add("k", "second");'
            ' LinkedList values = t.get("k");'
            " print(values.size()); print(values.getFirst());"
        )
        assert out.output == ["2", "first"]

    def test_missing_key(self):
        out = run_main(
            'TreeMap t = new TreeMap(); t.add("a", "x");'
            ' print(t.get("zzz")); print(t.getFirst("zzz"));'
            ' print(t.containsKey("a")); print(t.containsKey("b"));'
        )
        assert out.output == ["null", "null", "true", "false"]

    def test_size_counts_all_values(self):
        out = run_main(
            "TreeMap t = new TreeMap(); print(t.isEmpty());"
            ' t.add("a", "1"); t.add("a", "2"); t.add("b", "3");'
            " print(t.size()); print(t.isEmpty());"
        )
        assert out.output == ["true", "3", "false"]

    def test_deep_unbalanced_insertions(self):
        body = (
            "TreeMap t = new TreeMap();"
            + " ".join(f't.add("k{i:02d}", "{i}");' for i in range(20))
            + ' print(t.getFirst("k00")); print(t.getFirst("k19"));'
        )
        out = run_main(body)
        assert out.output == ["0", "19"]


NESTED = """\
class Order {
  String item;

  Order(String i) {
    item = i;                                        //@tag:orderitem
  }
}

class Main {
  static void main(String[] args) {
    HashMap regions = new HashMap();
    TreeMap west = new TreeMap();
    regions.put("west", west);
    west.add("alice", new Order("anvil"));           //@tag:insert
    west.add("bob", new Order("tnt"));               //@tag:other
    TreeMap region = (TreeMap) regions.get("west");  //@tag:hashget
    Order first = (Order) region.getFirst("alice");  //@tag:treeget
    print(first.item);                               //@tag:seed
  }
}
"""


class TestNestedStructureSlicing:
    """The introduction's motivating example, asserted."""

    @pytest.fixture(scope="class")
    def analyzed(self):
        return compile_and_analyze(NESTED, "nested.mj", stdlib=True)

    def test_thin_slice_is_tiny(self, analyzed):
        compiled, pts, sdg = analyzed
        seed = marker_line(NESTED, "tag", "seed")
        thin = ThinSlicer(compiled, sdg).slice_from_line(seed)
        trad = TraditionalSlicer(compiled, sdg).slice_from_line(seed)
        assert len(thin.lines) * 5 <= len(trad.lines)

    def test_thin_slice_has_value_producers(self, analyzed):
        compiled, pts, sdg = analyzed
        seed = marker_line(NESTED, "tag", "seed")
        thin = ThinSlicer(compiled, sdg).slice_from_line(seed)
        assert marker_line(NESTED, "tag", "orderitem") in thin.lines
        assert marker_line(NESTED, "tag", "insert") in thin.lines

    def test_thin_slice_excludes_container_plumbing(self, analyzed):
        compiled, pts, sdg = analyzed
        seed = marker_line(NESTED, "tag", "seed")
        thin = ThinSlicer(compiled, sdg).slice_from_line(seed)
        trad = TraditionalSlicer(compiled, sdg).slice_from_line(seed)
        # The retrieval lines only manipulate pointers to containers:
        # excluded from the thin slice, present in the traditional one.
        for tag in ("hashget", "treeget"):
            line = marker_line(NESTED, "tag", tag)
            assert line not in thin.lines, tag
            assert line in trad.lines, tag

    def test_traditional_reaches_tree_internals(self, analyzed):
        compiled, pts, sdg = analyzed
        seed = marker_line(NESTED, "tag", "seed")
        trad = TraditionalSlicer(compiled, sdg).slice_from_line(seed)
        text = compiled.source.text.splitlines()
        sliced = "\n".join(text[line - 1] for line in trad.lines)
        assert "cur.left" in sliced or "cur.right" in sliced
        assert "buckets" in sliced

    def test_program_behaviour(self):
        compiled = compile_source(NESTED, include_stdlib=True)
        result = run_program(compiled.ast, compiled.table, [])
        assert result.output == ["anvil"]
