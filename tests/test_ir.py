"""IR lowering, CFG structure, dominance, and SSA tests."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.frontend import compile_source
from repro.ir import instructions as ins
from repro.ir.cfg import IRFunction
from repro.ir.dominance import compute_dominators
from repro.ir.printer import format_function
from repro.ir.ssa import verify_ssa


def compile_fn(source: str, name: str) -> IRFunction:
    return compile_source(source).ir.functions[name]


def instr_types(function: IRFunction) -> list[type]:
    return [type(i) for i in function.instructions()]


class TestLowering:
    def test_simple_arithmetic(self):
        fn = compile_fn(
            "class A { static int m(int x) { return x * 2 + 1; } }", "A.m"
        )
        kinds = instr_types(fn)
        assert kinds.count(ins.BinOp) == 2
        assert kinds[-1] is ins.Return

    def test_field_store_and_load(self):
        fn = compile_fn(
            "class A { int f; void m() { this.f = f + 1; } }", "A.m"
        )
        kinds = instr_types(fn)
        assert ins.FieldLoad in kinds
        assert ins.FieldStore in kinds

    def test_static_field_access(self):
        fn = compile_fn(
            "class A { static int F; static void m() { F = F + 1; } }", "A.m"
        )
        kinds = instr_types(fn)
        assert ins.StaticLoad in kinds and ins.StaticStore in kinds

    def test_array_operations(self):
        fn = compile_fn(
            "class A { static int m(int[] a) { a[0] = 1; return a[0] + a.length; } }",
            "A.m",
        )
        kinds = instr_types(fn)
        assert ins.ArrayStore in kinds
        assert ins.ArrayLoad in kinds
        assert ins.ArrayLength in kinds

    def test_postfix_increment_yields_old_value(self):
        fn = compile_fn(
            "class A { static int m(int x) { int y = x++; return y; } }", "A.m"
        )
        # old value moved out before the increment writes back
        text = format_function(fn)
        assert " + " in text

    def test_new_object_emits_ctor_call(self):
        fn = compile_fn("class A { static A m() { return new A(); } }", "A.m")
        calls = [i for i in fn.instructions() if isinstance(i, ins.Call)]
        assert len(calls) == 1
        assert calls[0].kind == "special"
        assert calls[0].method_name == "<init>"

    def test_default_constructor_synthesized(self):
        program = compile_source("class A { int f = 3; }").ir
        ctor = program.functions["A.<init>"]
        assert any(isinstance(i, ins.FieldStore) for i in ctor.instructions())

    def test_implicit_super_call(self):
        program = compile_source(
            "class A { int x; } class B extends A { B() { x = 1; } }"
        ).ir
        ctor = program.functions["B.<init>"]
        calls = [i for i in ctor.instructions() if isinstance(i, ins.Call)]
        assert calls and calls[0].owner == "A" and calls[0].method_name == "<init>"

    def test_explicit_super_call_args(self):
        program = compile_source(
            "class A { int x; A(int v) { x = v; } }"
            "class B extends A { B() { super(42); } }"
        ).ir
        ctor = program.functions["B.<init>"]
        calls = [i for i in ctor.instructions() if isinstance(i, ins.Call)]
        assert len(calls[0].args) == 1

    def test_clinit_generated_for_static_inits(self):
        program = compile_source("class A { static int F = 7; }").ir
        assert "A.<clinit>" in program.functions

    def test_no_clinit_without_static_inits(self):
        program = compile_source("class A { static int F; }").ir
        assert "A.<clinit>" not in program.functions

    def test_string_concat_marked(self):
        fn = compile_fn(
            'class A { static String m(int x) { return "v" + x; } }', "A.m"
        )
        binops = [i for i in fn.instructions() if isinstance(i, ins.BinOp)]
        assert any(b.result_is_string for b in binops)

    def test_int_add_not_marked_as_string(self):
        fn = compile_fn("class A { static int m(int x) { return x + 1; } }", "A.m")
        binops = [i for i in fn.instructions() if isinstance(i, ins.BinOp)]
        assert all(not b.result_is_string for b in binops)

    def test_var_decl_without_init_gets_default(self):
        fn = compile_fn("class A { static int m() { int x; return x; } }", "A.m")
        consts = [i for i in fn.instructions() if isinstance(i, ins.Const)]
        assert any(c.value == 0 for c in consts)

    def test_cast_and_instanceof(self):
        fn = compile_fn(
            "class B {} class A { static boolean m(Object o) {"
            " B b = (B) o; return o instanceof B; } }",
            "A.m",
        )
        kinds = instr_types(fn)
        assert ins.Cast in kinds and ins.InstanceOf in kinds


class TestControlFlow:
    def test_if_produces_branch(self):
        fn = compile_fn(
            "class A { static int m(boolean b) { if (b) { return 1; } return 0; } }",
            "A.m",
        )
        assert any(isinstance(i, ins.Branch) for i in fn.instructions())

    def test_unreachable_code_pruned(self):
        fn = compile_fn(
            "class A { static int m() { return 1; } }",
            "A.m",
        )
        # exactly one block: const + return
        assert len(fn.blocks) == 1

    def test_while_loop_structure(self):
        fn = compile_fn(
            "class A { static int m(int n) {"
            " int s = 0; while (n > 0) { s = s + n; n = n - 1; } return s; } }",
            "A.m",
        )
        preds = fn.predecessors()
        # the loop header has two predecessors (entry and back edge)
        headers = [b for b, ps in preds.items() if len(ps) == 2]
        assert headers

    def test_break_jumps_to_exit(self):
        fn = compile_fn(
            "class A { static int m() {"
            " int i = 0; while (true) { i++; if (i > 3) { break; } } return i; } }",
            "A.m",
        )
        assert any(isinstance(i, ins.Branch) for i in fn.instructions())

    def test_short_circuit_creates_blocks(self):
        fn = compile_fn(
            "class A { static boolean m(boolean a, boolean b) { return a && b; } }",
            "A.m",
        )
        assert len(fn.blocks) >= 3

    def test_try_region_records_blocks_and_exc_edges(self):
        fn = compile_fn(
            "class E { E() {} }"
            "class A { static int m(boolean b) {"
            " try { if (b) { throw new E(); } } catch (E e) { return 1; }"
            " return 0; } }",
            "A.m",
        )
        assert fn.try_regions
        region = fn.try_regions[0]
        assert region.blocks
        for block_id in region.blocks:
            if block_id in fn.blocks:
                assert region.catch_block in fn.blocks[block_id].exc_successors

    def test_every_block_is_terminated(self):
        fn = compile_fn(
            "class A { static void m(boolean b) { if (b) { print(1); } } }", "A.m"
        )
        for block in fn.blocks.values():
            assert block.terminator is not None


class TestDominance:
    def test_entry_dominates_all(self):
        succs = {0: [1, 2], 1: [3], 2: [3], 3: []}
        dom = compute_dominators(0, succs)
        for node in (1, 2, 3):
            assert dom.dominates(0, node)

    def test_diamond_idoms(self):
        succs = {0: [1, 2], 1: [3], 2: [3], 3: []}
        dom = compute_dominators(0, succs)
        assert dom.idom[1] == 0
        assert dom.idom[2] == 0
        assert dom.idom[3] == 0

    def test_diamond_frontier(self):
        succs = {0: [1, 2], 1: [3], 2: [3], 3: []}
        dom = compute_dominators(0, succs)
        assert dom.frontier[1] == {3}
        assert dom.frontier[2] == {3}

    def test_loop_frontier_contains_header(self):
        succs = {0: [1], 1: [2, 3], 2: [1], 3: []}
        dom = compute_dominators(0, succs)
        assert 1 in dom.frontier[2]

    def test_strict_domination(self):
        succs = {0: [1], 1: []}
        dom = compute_dominators(0, succs)
        assert dom.strictly_dominates(0, 1)
        assert not dom.strictly_dominates(1, 1)

    @given(
        st.dictionaries(
            st.integers(0, 7),
            st.lists(st.integers(0, 7), max_size=3),
            max_size=8,
        )
    )
    def test_idom_is_proper_ancestor_property(self, raw):
        succs = {n: list(set(t)) for n, t in raw.items()}
        succs.setdefault(0, [])
        for targets in list(succs.values()):
            for t in targets:
                succs.setdefault(t, [])
        dom = compute_dominators(0, succs)
        for node, parent in dom.idom.items():
            if parent is not None:
                assert parent != node
                assert dom.dominates(parent, node)


_PROGRAMS = [
    "class A { static int m(int x) { return x + 1; } }",
    "class A { static int m(int n) { int s = 0;"
    " for (int i = 0; i < n; i++) { s += i; } return s; } }",
    "class A { int f; void m(int x) { if (x > 0) { f = x; } else { f = -x; } } }",
    "class A { static int m(int n) { int i = 0;"
    " while (i < n) { if (i % 2 == 0) { i += 2; } else { i++; } } return i; } }",
    "class E { E() {} } class A { static int m(boolean b) {"
    " int x = 0; try { if (b) { throw new E(); } x = 1; }"
    " catch (E e) { x = 2; } return x; } }",
]


class TestSSA:
    @pytest.mark.parametrize("source", _PROGRAMS)
    def test_ssa_invariants_hold(self, source):
        compiled = compile_source(source)
        for function in compiled.ir.functions.values():
            assert verify_ssa(function) == []

    def test_phi_placed_at_join(self):
        fn = compile_fn(
            "class A { static int m(boolean b) {"
            " int x = 1; if (b) { x = 2; } return x; } }",
            "A.m",
        )
        phis = [i for i in fn.instructions() if isinstance(i, ins.Phi)]
        assert len(phis) == 1
        assert len(phis[0].operands) == 2

    def test_loop_variable_gets_phi(self):
        fn = compile_fn(
            "class A { static int m(int n) { int i = 0;"
            " while (i < n) { i = i + 1; } return i; } }",
            "A.m",
        )
        phis = [i for i in fn.instructions() if isinstance(i, ins.Phi)]
        assert any(p.dest.startswith("i~") for p in phis)

    def test_dead_phis_pruned(self):
        fn = compile_fn(
            "class A { static int m(boolean b) {"
            " int unused = 1; if (b) { unused = 2; } return 7; } }",
            "A.m",
        )
        phis = [i for i in fn.instructions() if isinstance(i, ins.Phi)]
        assert phis == []

    def test_params_not_renamed_at_entry(self):
        fn = compile_fn("class A { static int m(int x) { return x; } }", "A.m")
        ret = fn.returns()[0]
        assert ret.value == "x"

    def test_each_var_defined_once(self):
        fn = compile_fn(
            "class A { static int m(int n) { int x = 0;"
            " for (int i = 0; i < n; i++) { x = x + i; } return x; } }",
            "A.m",
        )
        defs = [i.defined_var() for i in fn.instructions() if i.defined_var()]
        assert len(defs) == len(set(defs))

    def test_ssa_on_whole_stdlib(self):
        compiled = compile_source("class Z {}", include_stdlib=True)
        for function in compiled.ir.functions.values():
            assert verify_ssa(function) == []


class TestProgramIndex:
    def test_function_of(self):
        compiled = compile_source("class A { static int m() { return 1; } }")
        instr = next(compiled.ir.functions["A.m"].instructions())
        assert compiled.ir.function_of(instr).name == "A.m"

    def test_instructions_at_line(self):
        source = "class A {\n  static int m() {\n    return 1 + 2;\n  }\n}"
        compiled = compile_source(source, "x.mj")
        instrs = compiled.instructions_at_line(3)
        assert instrs
        assert all(i.position.line == 3 for i in instrs)

    def test_entry_points(self):
        compiled = compile_source(
            "class A { static int F = 1; static void main(String[] a) {} }"
        )
        roots = compiled.ir.entry_points()
        assert "A.<clinit>" in roots and "A.main" in roots
