"""Property tests: MJ expression evaluation against a Python oracle.

Random integer/boolean expression trees are rendered both as MJ source
(evaluated by the full pipeline: lexer → parser → checker → interpreter)
and as Python values, and must agree.  Division is generated with its
Java semantics (truncation toward zero) mirrored on the oracle side.
"""

from __future__ import annotations

from dataclasses import dataclass

from hypothesis import given, settings, strategies as st

from repro.frontend import compile_source
from repro.interp.interpreter import run_program


@dataclass(frozen=True)
class Expr:
    text: str
    value: object  # int | bool


def _trunc_div(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return q if (a < 0) == (b < 0) else -q


def _trunc_mod(a: int, b: int) -> int:
    return a - _trunc_div(a, b) * b


_INT_LEAF = st.integers(min_value=0, max_value=99).map(
    lambda n: Expr(str(n), n)
)
_BOOL_LEAF = st.booleans().map(lambda b: Expr("true" if b else "false", b))


def _int_ops(children):
    def combine(pair):
        op, (a, b) = pair
        if op == "+":
            return Expr(f"({a.text} + {b.text})", a.value + b.value)
        if op == "-":
            return Expr(f"({a.text} - {b.text})", a.value - b.value)
        if op == "*":
            return Expr(f"({a.text} * {b.text})", a.value * b.value)
        if op == "/":
            if b.value == 0:
                return Expr(f"({a.text} + {b.text})", a.value + b.value)
            return Expr(f"({a.text} / {b.text})", _trunc_div(a.value, b.value))
        if b.value == 0:
            return Expr(f"({a.text} - {b.text})", a.value - b.value)
        return Expr(f"({a.text} % {b.text})", _trunc_mod(a.value, b.value))

    return st.tuples(
        st.sampled_from("+-*/%"), st.tuples(children, children)
    ).map(combine)


def _neg(children):
    return children.map(lambda e: Expr(f"(-{e.text})", -e.value))


int_exprs = st.recursive(
    _INT_LEAF, lambda c: st.one_of(_int_ops(c), _neg(c)), max_leaves=12
)


def _comparisons(ints):
    def combine(pair):
        op, (a, b) = pair
        table = {
            "<": a.value < b.value,
            "<=": a.value <= b.value,
            ">": a.value > b.value,
            ">=": a.value >= b.value,
            "==": a.value == b.value,
            "!=": a.value != b.value,
        }
        return Expr(f"({a.text} {op} {b.text})", table[op])

    return st.tuples(
        st.sampled_from(["<", "<=", ">", ">=", "==", "!="]),
        st.tuples(ints, ints),
    ).map(combine)


def _bool_ops(children):
    def combine(pair):
        op, (a, b) = pair
        if op == "&&":
            return Expr(f"({a.text} && {b.text})", a.value and b.value)
        return Expr(f"({a.text} || {b.text})", a.value or b.value)

    return st.tuples(st.sampled_from(["&&", "||"]), st.tuples(children, children)).map(
        combine
    )


def _nots(children):
    return children.map(lambda e: Expr(f"(!{e.text})", not e.value))


bool_exprs = st.recursive(
    st.one_of(_BOOL_LEAF, _comparisons(int_exprs)),
    lambda c: st.one_of(_bool_ops(c), _nots(c)),
    max_leaves=10,
)


def _evaluate_in_mj(expr_text: str) -> str:
    source = (
        "class Main { static void main(String[] args) { "
        f"print({expr_text}); "
        "} }"
    )
    compiled = compile_source(source)
    result = run_program(compiled.ast, compiled.table)
    assert not result.failed, result.error
    return result.output[0]


def _python_render(value: object) -> str:
    if value is True:
        return "true"
    if value is False:
        return "false"
    return str(value)


@settings(max_examples=150, deadline=None)
@given(int_exprs)
def test_integer_expressions_match_oracle(expr):
    assert _evaluate_in_mj(expr.text) == _python_render(expr.value)


@settings(max_examples=150, deadline=None)
@given(bool_exprs)
def test_boolean_expressions_match_oracle(expr):
    assert _evaluate_in_mj(expr.text) == _python_render(expr.value)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(-50, 50), min_size=1, max_size=8))
def test_accumulation_loop_matches_sum(values):
    stores = " ".join(
        f"a[{i}] = {v};" if v >= 0 else f"a[{i}] = 0 - {-v};"
        for i, v in enumerate(values)
    )
    source = (
        "class Main { static void main(String[] args) { "
        f"int[] a = new int[{len(values)}]; {stores} "
        "int s = 0; for (int i = 0; i < a.length; i++) { s += a[i]; } "
        "print(s); } }"
    )
    compiled = compile_source(source)
    result = run_program(compiled.ast, compiled.table)
    assert result.output == [str(sum(values))]


@settings(max_examples=60, deadline=None)
@given(st.text(alphabet=st.sampled_from("abc "), max_size=12))
def test_string_natives_match_python(text):
    source = (
        "class Main { static void main(String[] args) { "
        "String s = args[0]; "
        "print(s.length()); print(s.toUpperCase()); print(s.trim()); "
        'print(s.indexOf("b")); print(s.contains("ab")); '
        "} }"
    )
    compiled = compile_source(source)
    result = run_program(compiled.ast, compiled.table, [text])
    expected = [
        str(len(text)),
        text.upper(),
        text.strip(),
        str(text.find("b")),
        "true" if "ab" in text else "false",
    ]
    assert result.output == expected
