"""Performance regression guards.

Loose wall-clock bounds that catch accidental quadratic blow-ups in the
analysis pipeline (e.g. an edge-dedup regression or a worklist that
stops deduplicating).  Bounds are ~10x typical measured times, so they
only fire on genuine regressions, not machine noise.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis.pointsto import solve_points_to
from repro.frontend import compile_source
from repro.sdg.sdg import build_sdg
from repro.slicing.thin import ThinSlicer
from repro.suite.harness import SUITE_PROGRAMS
from repro.suite.loader import load_source
from repro.suite.synthetic import generate_layered_program


@pytest.mark.perf
def test_whole_suite_analysis_under_budget():
    start = time.perf_counter()
    for name in SUITE_PROGRAMS:
        compiled = compile_source(load_source(name), name, include_stdlib=True)
        pts = solve_points_to(compiled.ir)
        build_sdg(compiled, pts)
    elapsed = time.perf_counter() - start
    assert elapsed < 30, f"suite analysis took {elapsed:.1f}s (typical ~2s)"


@pytest.mark.perf
def test_synthetic_program_analysis_under_budget():
    source = generate_layered_program(12, 6)  # ~2.8k SDG statements
    start = time.perf_counter()
    compiled = compile_source(source, "syn.mj", include_stdlib=True)
    pts = solve_points_to(compiled.ir)
    sdg = build_sdg(compiled, pts)
    elapsed = time.perf_counter() - start
    assert elapsed < 15, f"synthetic analysis took {elapsed:.1f}s (typical ~0.5s)"


@pytest.mark.perf
def test_warm_cached_query_10x_faster_than_cold(tmp_path):
    """A cache hit must skip the pipeline: ≥10x faster than first analysis.

    Drives the real server dispatch path (JSON in, JSON out) on a
    mid-size suite program.  The cold request pays parse → type-check →
    SSA → points-to → SDG; the warm request is a memory hit.
    """
    import json

    from repro.server.cache import AnalysisCache
    from repro.server.daemon import SliceServer
    from repro.server.store import DiskStore

    server = SliceServer(AnalysisCache(store=DiskStore(tmp_path)))
    request = json.dumps(
        {"id": 1, "method": "stats", "params": {"program": "minijavac"}}
    )
    try:
        start = time.perf_counter()
        cold_response = json.loads(server.handle_line(request))
        cold = time.perf_counter() - start
        assert cold_response["result"]["origin"] == "analyzed"

        warm = min(
            _timed(lambda: server.handle_line(request)) for _ in range(3)
        )
        assert json.loads(server.handle_line(request))["result"]["origin"] == "memory"
    finally:
        server.close()
    assert warm * 10 <= cold, (
        f"warm query {warm * 1000:.1f}ms not 10x faster than cold "
        f"{cold * 1000:.1f}ms"
    )


def _timed(thunk) -> float:
    start = time.perf_counter()
    thunk()
    return time.perf_counter() - start


#: Cold-path envelope per program (ms), ~10x the best-of times measured
#: after the solver/frontend optimization round (jtopas ~21ms, minixml
#: ~54ms, minijavac ~51ms, parsegen ~75ms) so only a genuine cold-path
#: regression — not scheduler noise — can trip it.
COLD_ENVELOPE_MS = {
    "jtopas": 300,
    "minixml": 600,
    "minijavac": 600,
    "parsegen": 800,
}


@pytest.mark.perf
@pytest.mark.parametrize("name", sorted(COLD_ENVELOPE_MS))
def test_cold_analysis_envelope(name):
    from repro import analyze
    from repro.suite.loader import load_source

    source = load_source(name)
    best = min(_timed(lambda: analyze(source, name)) for _ in range(3))
    budget = COLD_ENVELOPE_MS[name] / 1000
    assert best < budget, (
        f"cold analysis of {name} took {best * 1000:.0f}ms "
        f"(envelope {COLD_ENVELOPE_MS[name]}ms)"
    )


def _salted(base: str, index: int) -> str:
    """Distinct source text (distinct fingerprint) per task, same cost."""
    return f"{base}\n// cold-throughput salt {index}\n"


@pytest.mark.perf
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="process-executor speedup needs at least 2 cores",
)
def test_process_executor_beats_threads_on_cold_analyses():
    """Multi-core guard: ≥1.3x cold throughput at 2 process workers.

    Two threads running ``analyze`` serialize under the GIL; two worker
    processes do not.  Salted sources keep every analysis cold, and the
    pool is warmed first so the comparison measures analysis throughput,
    not spawn/import cost (which a long-lived daemon pays once).
    """
    from concurrent.futures import ThreadPoolExecutor

    from repro import analyze
    from repro.parallel import ProcessPool, analyze_artifact

    base = load_source("minixml")
    tasks = 4

    with ThreadPoolExecutor(max_workers=2) as threads:
        start = time.perf_counter()
        list(
            threads.map(
                lambda i: analyze(_salted(base, i), f"salt{i}.mj"),
                range(tasks),
            )
        )
        thread_s = time.perf_counter() - start

    with ProcessPool(workers=2) as pool:
        pool.prestart(wait=True)
        with ThreadPoolExecutor(max_workers=2) as fan:
            # First task per worker pays the package import; warm both.
            list(
                fan.map(
                    lambda i: pool.run(
                        analyze_artifact, _salted(base, 1000 + i), "warm.mj"
                    ),
                    range(2),
                )
            )
            start = time.perf_counter()
            list(
                fan.map(
                    lambda i: pool.run(
                        analyze_artifact, _salted(base, i), f"salt{i}.mj"
                    ),
                    range(tasks),
                )
            )
            process_s = time.perf_counter() - start

    assert process_s * 1.3 <= thread_s, (
        f"2 process workers took {process_s:.2f}s vs {thread_s:.2f}s for "
        f"2 threads — expected >=1.3x cold throughput"
    )


#: The checked-in scale corpus (tests/scale/): grammar-generated
#: programs whose cold analyses run well past the hand-written suite
#: (~0.4–1.0s vs the suite's ~0.2s ceiling), so these guards exercise
#: non-trivial points-to/SDG workloads.  Envelopes are ~10x measured.
SCALE_ENVELOPE_MS = {
    "scale_s101_x6.mj": 5_000,
    "scale_s202_x6.mj": 5_000,
    "scale_s303_x14.mj": 8_000,
    "scale_s404_x14.mj": 12_000,
}

_SCALE_DIR = os.path.join(os.path.dirname(__file__), "scale")


@pytest.mark.perf
@pytest.mark.parametrize("name", sorted(SCALE_ENVELOPE_MS))
def test_scale_corpus_analysis_envelope(name):
    from repro import analyze

    with open(os.path.join(_SCALE_DIR, name)) as handle:
        source = handle.read()
    elapsed = _timed(lambda: analyze(source, name))
    budget = SCALE_ENVELOPE_MS[name] / 1000
    assert elapsed < budget, (
        f"cold analysis of scale-corpus {name} took {elapsed * 1000:.0f}ms "
        f"(envelope {SCALE_ENVELOPE_MS[name]}ms)"
    )


def test_scale_corpus_matches_generator():
    """Every corpus file regenerates byte-identically from its manifest
    entry — the grammar's determinism contract extends to the scale
    dial, so a grammar change that silently rewrites the corpus (and
    its measured costs) fails here instead of skewing the perf guards."""
    import json

    from repro.fuzz.grammar import generate_program

    with open(os.path.join(_SCALE_DIR, "MANIFEST.json")) as handle:
        manifest = json.load(handle)
    assert len(manifest) >= 3
    for entry in manifest:
        with open(os.path.join(_SCALE_DIR, entry["file"])) as handle:
            checked_in = handle.read()
        regenerated = generate_program(entry["seed"], scale=entry["scale"])
        assert regenerated == checked_in, (
            f"{entry['file']} no longer matches "
            f"generate_program({entry['seed']}, scale={entry['scale']})"
        )
        assert len(checked_in.splitlines()) == entry["lines"]


@pytest.mark.perf
def test_flat_warm_disk_3x_faster_than_pickle(tmp_path):
    """The zero-copy acceptance bar: a warm-disk load + slice over the
    mmap-backed flat artifact must be ≥3x faster than the retired
    pickle-envelope path on the largest suite program.  (Measured gap
    is ~100-300x — mapping a few pages vs unpickling the whole object
    graph — so 3x only trips if the flat path starts materializing.)"""
    import pickle

    from repro import AnalyzeOptions, analyze
    from repro.artifact import content_key
    from repro.server.store import DiskStore
    from repro.slicing.flatslice import flat_slicer

    name = "parsegen"
    source = load_source(name)
    options = AnalyzeOptions()
    key = content_key(source, options)
    analyzed = analyze(source, f"{name}.mj", options=options)
    store = DiskStore(tmp_path)
    store.save(key, analyzed)
    legacy = DiskStore(tmp_path / "legacy")
    legacy.write_legacy_pickle(key, analyzed)
    seed = sorted(
        {i.position.line for i in analyzed.compiled.ir.all_instructions()
         if i.position.line}
    )[50]

    def flat_warm():
        view = store.load_view(key)
        assert flat_slicer(view, "thin").slice_from_line(seed).lines
        view.close()

    def pickle_warm():
        envelope = pickle.loads(legacy.legacy_path_for(key).read_bytes())
        restored = pickle.loads(envelope["payload"])
        assert restored.thin_slicer.slice_from_line(seed).lines

    flat_s = min(_timed(flat_warm) for _ in range(3))
    pickle_s = min(_timed(pickle_warm) for _ in range(3))
    assert flat_s * 3 <= pickle_s, (
        f"flat warm path {flat_s * 1000:.2f}ms not 3x faster than "
        f"pickle {pickle_s * 1000:.2f}ms"
    )


@pytest.mark.perf
def test_thousand_slices_under_budget():
    compiled = compile_source(
        load_source("minijavac"), "minijavac", include_stdlib=True
    )
    pts = solve_points_to(compiled.ir)
    sdg = build_sdg(compiled, pts)
    slicer = ThinSlicer(compiled, sdg)
    lines = sorted(
        {i.position.line for i in compiled.ir.all_instructions() if i.position.line}
    )
    start = time.perf_counter()
    count = 0
    while count < 1000:
        for line in lines:
            slicer.slice_from_line(line)
            count += 1
            if count >= 1000:
                break
    elapsed = time.perf_counter() - start
    assert elapsed < 30, f"1000 slices took {elapsed:.1f}s (typical ~2s)"
