"""Forward slicing and DOT export tests."""

from __future__ import annotations

from repro.lang.source import find_markers
from repro.sdg.export import sdg_to_dot, slice_to_dot
from repro.sdg.nodes import THIN_KINDS, TRADITIONAL_KINDS
from repro.slicing.forward import (
    ForwardSlicer,
    forward_thin_slicer,
    forward_traditional_slicer,
)
from repro.slicing.thin import ThinSlicer


def tags(source: str) -> dict[str, int]:
    return find_markers(source)["tag"]


class TestForwardSlicing:
    def test_forward_from_allocation_reaches_seed(self, figure2):
        source, compiled, pts, sdg = figure2
        t = tags(source)
        forward = forward_thin_slicer(compiled, sdg)
        result = forward.slice_from_line(t["allocB"])
        assert t["store"] in result.lines
        assert t["seed"] in result.lines

    def test_forward_thin_excludes_base_consumers(self, figure2):
        source, compiled, pts, sdg = figure2
        t = tags(source)
        forward = forward_thin_slicer(compiled, sdg)
        # allocA's value is only ever used as a base pointer / in the
        # comparison, so its forward *thin* slice stays small...
        thin_lines = forward.slice_from_line(t["allocA"]).lines
        assert t["seed"] not in thin_lines
        # ...while the forward traditional slice reaches the seed.
        trad = forward_traditional_slicer(compiled, sdg)
        assert t["seed"] in trad.slice_from_line(t["allocA"]).lines

    def test_forward_duality_with_backward(self, figure2):
        """n is in forward(seed-of-backward) iff backward(n) hits seed —
        checked pointwise on the figure program."""
        source, compiled, pts, sdg = figure2
        t = tags(source)
        backward = ThinSlicer(compiled, sdg)
        forward = forward_thin_slicer(compiled, sdg)
        back_nodes = set(backward.slice_from_line(t["seed"]).traversal.order)
        for line_tag in ("allocB", "store"):
            fwd_nodes = set(
                forward.slice_from_line(t[line_tag]).traversal.order
            )
            seeds = set(backward.seeds_at_line(t["seed"]))
            assert seeds & fwd_nodes  # the seed is influenced by both

    def test_forward_through_containers(self, figure1):
        source, compiled, pts, sdg = figure1
        t = tags(source)
        forward = forward_thin_slicer(compiled, sdg)
        # The (buggy) substring result flows forward through Vector.add /
        # Vector.get to the print.
        result = forward.slice_from_line(t["buggy"])
        assert t["seed"] in result.lines

    def test_forward_empty_for_unused_line(self, figure2):
        source, compiled, pts, sdg = figure2
        forward = forward_thin_slicer(compiled, sdg)
        assert forward.slice_from_line(1).lines == set()

    def test_custom_kinds(self, figure2):
        source, compiled, pts, sdg = figure2
        t = tags(source)
        thin = ForwardSlicer(compiled, sdg, THIN_KINDS)
        trad = ForwardSlicer(compiled, sdg, TRADITIONAL_KINDS)
        assert (
            thin.slice_from_line(t["allocA"]).lines
            <= trad.slice_from_line(t["allocA"]).lines
        )


class TestDotExport:
    def test_full_graph_renders(self, figure2):
        source, compiled, pts, sdg = figure2
        dot = sdg_to_dot(sdg, title="figure2")
        assert dot.startswith("digraph sdg {")
        assert dot.rstrip().endswith("}")
        assert 'label="figure2"' in dot

    def test_every_chosen_node_declared(self, figure2):
        source, compiled, pts, sdg = figure2
        dot = sdg_to_dot(sdg)
        # Every statement node appears with its line prefix.
        assert dot.count("shape=box") >= sdg.statement_count()

    def test_edge_styles_distinguish_kinds(self, figure2):
        source, compiled, pts, sdg = figure2
        dot = sdg_to_dot(sdg)
        assert "style=dashed" in dot  # base-pointer edges
        assert "style=dotted" in dot  # control edges

    def test_slice_export_restricts_nodes(self, figure2):
        source, compiled, pts, sdg = figure2
        t = tags(source)
        result = ThinSlicer(compiled, sdg).slice_from_line(t["seed"])
        dot = slice_to_dot(result, sdg, title="thin")
        full = sdg_to_dot(sdg)
        assert len(dot) < len(full)
        assert "color=red" in dot  # highlighted seed

    def test_dot_is_parseable_shape(self, figure4):
        source, compiled, pts, sdg = figure4
        dot = sdg_to_dot(sdg)
        # Crude structural sanity: balanced braces, '->' edges present.
        assert dot.count("{") == dot.count("}")
        assert "->" in dot
