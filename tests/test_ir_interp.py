"""IR interpreter tests: the SSA CFG must behave like the AST.

Running both interpreters on the same programs cross-validates the
lowering, CFG construction, and SSA renaming end-to-end.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.frontend import compile_source
from repro.interp.interpreter import run_program
from repro.ir.interp import run_ir_program
from repro.suite.loader import load_source
from tests.test_properties import mj_program


def both(source: str, args=None, stdlib=False):
    compiled = compile_source(source, include_stdlib=stdlib)
    ast_result = run_program(compiled.ast, compiled.table, args)
    ir_result = run_ir_program(compiled.ir, args)
    return ast_result, ir_result


def _normalize(lines: list[str]) -> list[str]:
    # Printed object reprs embed a process-global allocation counter
    # ('B@3'); both interpreters share it, so the ids differ between
    # runs.  Identity is not observable in MJ — strip the counter.
    import re

    return [re.sub(r"@\d+", "@id", line) for line in lines]


def assert_same(source: str, args=None, stdlib=False):
    ast_result, ir_result = both(source, args, stdlib)
    assert _normalize(ir_result.output) == _normalize(ast_result.output)
    assert ir_result.error_class == ast_result.error_class
    assert ir_result.timed_out == ast_result.timed_out


class TestBasicAgreement:
    def test_arithmetic_and_control(self):
        assert_same(
            "class Main { static void main(String[] args) {"
            " int s = 0; for (int i = 0; i < 10; i++) {"
            " if (i % 2 == 0) { s += i; } else { s -= 1; } }"
            " print(s); print(-7 / 2); print(-7 % 2); } }"
        )

    def test_short_circuit(self):
        assert_same(
            "class Main {"
            " static boolean boom() { print(\"boom\"); return true; }"
            " static void main(String[] args) {"
            " print(false && boom()); print(true || boom()); } }"
        )

    def test_virtual_dispatch_and_fields(self):
        assert_same(
            "class A { int v; int get() { return v; } }"
            "class B extends A { int get() { return v * 2; } }"
            "class Main { static void main(String[] args) {"
            " A a = new B(); a.v = 21; print(a.get()); } }"
        )

    def test_constructors_and_field_inits(self):
        assert_same(
            "class A { int base; A(int b) { base = b; } }"
            "class B extends A { int extra = 5; B() { super(10); } }"
            "class Main { static void main(String[] args) {"
            " B b = new B(); print(b.base + b.extra); } }"
        )

    def test_statics_and_clinit(self):
        assert_same(
            "class G { static int X = 6; static int Y = X * 7; }"
            "class Main { static void main(String[] args) { print(G.Y); } }"
        )

    def test_strings_and_natives(self):
        assert_same(
            'class Main { static void main(String[] args) {'
            ' String s = args[0] + "!";'
            " print(s.toUpperCase()); print(s.length());"
            ' print(s.substring(1, 3)); print(s.indexOf("l")); } }',
            ["hello"],
        )

    def test_arrays_and_postfix(self):
        assert_same(
            "class Main { static void main(String[] args) {"
            " int[] a = new int[4]; int i = 0;"
            " a[i++] = 10; a[i++] = 20;"
            " print(a[0] + a[1] + a.length + i); } }"
        )

    def test_recursion(self):
        assert_same(
            "class Main {"
            " static int fib(int n) { if (n < 2) { return n; }"
            " return fib(n - 1) + fib(n - 2); }"
            " static void main(String[] args) { print(fib(12)); } }"
        )


class TestExceptionAgreement:
    def test_throw_and_catch(self):
        assert_same(
            "class E { String m; E(String m) { this.m = m; } }"
            "class Main { static void main(String[] args) {"
            ' try { throw new E("boom"); } catch (E e) { print(e.m); }'
            ' print("after"); } }'
        )

    def test_builtin_exception_caught_by_supertype(self):
        assert_same(
            "class Main { static void main(String[] args) {"
            " try { int x = 1 / 0; } catch (RuntimeException e) {"
            " print(e.getMessage()); } } }",
            stdlib=True,
        )

    def test_uncaught_propagates(self):
        assert_same(
            "class Main { static void main(String[] args) {"
            " int[] a = new int[1]; print(a[3]); } }",
            stdlib=True,
        )

    def test_exception_unwinds_through_calls(self):
        assert_same(
            "class E { E() {} }"
            "class Main {"
            " static void deep(int n) { if (n == 0) { throw new E(); }"
            " deep(n - 1); }"
            " static void main(String[] args) {"
            ' try { deep(4); } catch (E e) { print("unwound"); } } }'
        )

    def test_catch_type_mismatch_propagates(self):
        assert_same(
            "class E1 { E1() {} } class E2 { E2() {} }"
            "class Main { static void main(String[] args) {"
            ' try { throw new E1(); } catch (E2 e) { print("wrong"); } } }'
        )

    def test_variable_state_at_catch(self):
        # The classic SSA-at-catch corner: x is reassigned inside the
        # try before the throw; the catch must see the new value.
        assert_same(
            "class E { E() {} }"
            "class Main { static void main(String[] args) {"
            " int x = 1;"
            " try { x = 2; throw new E(); }"
            " catch (E e) { print(x); } } }"
        )

    def test_nested_try(self):
        assert_same(
            "class E1 { E1() {} } class E2 { E2() {} }"
            "class Main { static void main(String[] args) {"
            " try {"
            "   try { throw new E2(); } catch (E1 e) { print(\"inner\"); }"
            ' } catch (E2 e) { print("outer"); } } }'
        )


class TestSuiteAgreement:
    CASES = [
        ("figure1", ["John Doe", "Jane Roe"]),
        ("figure2", []),
        ("figure4", []),
        ("figure5", []),
        ("jtopas", ['foo 12 "x y" +']),
        ("minixml", ["<a id='42'><b>hi</b><c x='1'></c></a>"]),
        ("minixml", ["<a id='42'><b>hi</b></a>", "reset"]),
        ("xmlsec", ["Hello XML  Security", "7301"]),
        ("rules", []),
        ("minijavac", ["x = 1 + 2 * 3; y = x - (4 / 2); y * -2"]),
        ("parsegen", ["S -> a B | c ; B -> b | _ ; C -> S"]),
        ("raytrace", []),
        ("minibuild", [
            "prop name world; target lib = javac l; target app : lib = "
            "echo hi ${name}; target all : app lib = jar a"
        ]),
    ]

    @pytest.mark.parametrize(
        "name,args", CASES, ids=[f"{c[0]}-{i}" for i, c in enumerate(CASES)]
    )
    def test_suite_program_agreement(self, name, args):
        assert_same(load_source(name), args, stdlib=True)


class TestGeneratedAgreement:
    @settings(max_examples=30, deadline=None)
    @given(mj_program())
    def test_generated_program_agreement(self, source):
        assert_same(source)
