"""Property-based tests of slicing invariants over generated programs.

A hypothesis strategy builds small well-typed MJ programs (integer
locals, a heap Box, bounded loops, branches, prints).  For every
generated program the core invariants of the paper's definitions must
hold:

* the seed belongs to its own slice;
* thin ⊆ traditional (node- and line-wise);
* hierarchical expansion reaches the traditional slice fixpoint;
* the interpreter and the tracing interpreter agree;
* dynamic thin slices stay within the static traditional slice.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis.pointsto import solve_points_to
from repro.dynamic import trace_and_slice, trace_program
from repro.frontend import compile_source
from repro.interp.interpreter import run_program
from repro.sdg.sdg import build_sdg
from repro.slicing.expansion import expand_to_fixpoint, traditional_closure
from repro.slicing.thin import ThinSlicer
from repro.slicing.traditional import TraditionalSlicer

_VARS = ["a", "b", "c"]


@st.composite
def int_expr(draw, depth: int = 0) -> str:
    if depth >= 2 or draw(st.booleans()):
        choice = draw(st.integers(0, len(_VARS)))
        if choice == len(_VARS):
            return str(draw(st.integers(0, 9)))
        return _VARS[choice]
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(int_expr(depth + 1))
    right = draw(int_expr(depth + 1))
    return f"({left} {op} {right})"


@st.composite
def bool_expr(draw) -> str:
    op = draw(st.sampled_from(["<", "<=", ">", "==", "!="]))
    left = draw(int_expr(1))
    right = draw(int_expr(1))
    return f"({left} {op} {right})"


@st.composite
def statement(draw, loop_budget: list) -> str:
    kind = draw(st.sampled_from(["assign", "assign", "if", "box", "loop"]))
    target = draw(st.sampled_from(_VARS))
    if kind == "assign":
        return f"{target} = {draw(int_expr())};"
    if kind == "if":
        then_target = draw(st.sampled_from(_VARS))
        return (
            f"if ({draw(bool_expr())}) {{ {then_target} = {draw(int_expr())}; }}"
            f" else {{ {target} = {draw(int_expr())}; }}"
        )
    if kind == "box":
        return f"box.f = {draw(int_expr())}; {target} = box.f;"
    # bounded loop; each program gets at most two to cap runtime
    if loop_budget[0] <= 0:
        return f"{target} = {draw(int_expr())};"
    loop_budget[0] -= 1
    bound = draw(st.integers(1, 4))
    loop_var = f"i{loop_budget[0]}"
    return (
        f"for (int {loop_var} = 0; {loop_var} < {bound}; {loop_var}++) "
        f"{{ {target} = {target} + {draw(int_expr(1))}; }}"
    )


@st.composite
def mj_program(draw) -> str:
    loop_budget = [2]
    body = [
        "int a = 1;",
        "int b = 2;",
        "int c = 3;",
        "Box box = new Box();",
    ]
    for _ in range(draw(st.integers(1, 6))):
        body.append(draw(statement(loop_budget)))
    body.append("print(a);")
    body.append("print(b + c);")
    statements = "\n    ".join(body)
    return (
        "class Box { int f; }\n"
        "class Main {\n"
        "  static void main(String[] args) {\n"
        f"    {statements}\n"
        "  }\n"
        "}\n"
    )


def _analyze(source: str):
    compiled = compile_source(source, "gen.mj")
    pts = solve_points_to(compiled.ir)
    sdg = build_sdg(compiled, pts)
    return compiled, pts, sdg


def _print_lines(source: str) -> list[int]:
    return [
        i
        for i, line in enumerate(source.splitlines(), 1)
        if line.strip().startswith("print(")
    ]


@settings(max_examples=40, deadline=None)
@given(mj_program())
def test_generated_programs_run_cleanly(source):
    compiled = compile_source(source, "gen.mj")
    result = run_program(compiled.ast, compiled.table, [], max_steps=200_000)
    assert not result.failed, result.error
    assert len(result.output) == 2


@settings(max_examples=30, deadline=None)
@given(mj_program())
def test_thin_subset_of_traditional_on_generated(source):
    compiled, pts, sdg = _analyze(source)
    thin = ThinSlicer(compiled, sdg)
    trad = TraditionalSlicer(compiled, sdg)
    for line in _print_lines(source):
        thin_result = thin.slice_from_line(line)
        trad_result = trad.slice_from_line(line)
        assert set(thin_result.traversal.order) <= set(trad_result.traversal.order)
        assert thin_result.lines <= trad_result.lines
        assert line in thin_result.lines  # seed in its own slice


@settings(max_examples=20, deadline=None)
@given(mj_program())
def test_expansion_reaches_traditional_on_generated(source):
    compiled, pts, sdg = _analyze(source)
    slicer = ThinSlicer(compiled, sdg)
    for line in _print_lines(source):
        seeds = slicer.seeds_at_line(line)
        final = expand_to_fixpoint(sdg, seeds)
        assert final.nodes == traditional_closure(sdg, seeds)


@settings(max_examples=25, deadline=None)
@given(mj_program())
def test_tracer_agrees_with_interpreter_on_generated(source):
    compiled = compile_source(source, "gen.mj")
    reference = run_program(compiled.ast, compiled.table, [], max_steps=200_000)
    traced = trace_program(compiled.ast, compiled.table, [], max_steps=200_000)
    assert traced.output == reference.output
    assert traced.error_class == reference.error_class


@settings(max_examples=20, deadline=None)
@given(mj_program())
def test_dynamic_thin_within_static_traditional(source):
    compiled, pts, sdg = _analyze(source)
    run = trace_and_slice(source, [], "gen.mj", include_stdlib=False,
                          seed_output_index=0)
    seed_line = _print_lines(source)[0]
    static_trad = TraditionalSlicer(compiled, sdg).slice_from_line(seed_line)
    assert run.thin.lines <= static_trad.lines | {seed_line}
    assert run.thin.lines <= run.traditional.lines


@settings(max_examples=20, deadline=None)
@given(mj_program())
def test_bfs_order_deterministic(source):
    compiled, pts, sdg = _analyze(source)
    slicer = ThinSlicer(compiled, sdg)
    line = _print_lines(source)[0]
    first = slicer.slice_from_line(line).traversal.lines()
    second = slicer.slice_from_line(line).traversal.lines()
    assert first == second
