"""Lexer unit and property tests."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.lang.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import KEYWORDS, TokenKind


def kinds(text: str) -> list[TokenKind]:
    return [t.kind for t in tokenize(text)][:-1]  # drop EOF


def texts(text: str) -> list[str]:
    return [t.text for t in tokenize(text)][:-1]


class TestBasicTokens:
    def test_empty_input_is_just_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier(self):
        assert kinds("foo") == [TokenKind.IDENT]

    def test_identifier_with_digits_and_underscores(self):
        assert texts("foo_bar9") == ["foo_bar9"]

    def test_int_literal(self):
        tokens = tokenize("12345")
        assert tokens[0].kind is TokenKind.INT_LITERAL
        assert tokens[0].text == "12345"

    def test_identifier_cannot_start_with_digit(self):
        with pytest.raises(LexError):
            tokenize("9abc")

    @pytest.mark.parametrize("word,kind", sorted(KEYWORDS.items()))
    def test_keywords(self, word, kind):
        assert kinds(word) == [kind]

    def test_keyword_prefix_is_identifier(self):
        # 'classy' must not lex as 'class' + 'y'.
        assert kinds("classy") == [TokenKind.IDENT]

    def test_string_literal(self):
        tokens = tokenize('"hello world"')
        assert tokens[0].kind is TokenKind.STRING_LITERAL
        assert tokens[0].text == "hello world"

    def test_string_escapes(self):
        assert texts(r'"a\nb\tc\"d\\e"') == ["a\nb\tc\"d\\e"]

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_string_may_not_span_lines(self):
        with pytest.raises(LexError):
            tokenize('"abc\ndef"')

    def test_bad_escape(self):
        with pytest.raises(LexError):
            tokenize(r'"\q"')

    def test_char_literal_is_one_char_string(self):
        tokens = tokenize("'x'")
        assert tokens[0].kind is TokenKind.CHAR_LITERAL
        assert tokens[0].text == "x"

    def test_char_escape(self):
        assert tokenize(r"'\n'")[0].text == "\n"

    def test_unterminated_char(self):
        with pytest.raises(LexError):
            tokenize("'ab'")


class TestOperators:
    @pytest.mark.parametrize(
        "text,kind",
        [
            ("<=", TokenKind.LE),
            (">=", TokenKind.GE),
            ("==", TokenKind.EQ),
            ("!=", TokenKind.NE),
            ("&&", TokenKind.AND),
            ("||", TokenKind.OR),
            ("++", TokenKind.PLUS_PLUS),
            ("--", TokenKind.MINUS_MINUS),
            ("+=", TokenKind.PLUS_ASSIGN),
            ("-=", TokenKind.MINUS_ASSIGN),
        ],
    )
    def test_two_char_operators(self, text, kind):
        assert kinds(text) == [kind]

    def test_maximal_munch(self):
        # '<=' lexes as one token, not '<' '='.
        assert kinds("a<=b") == [TokenKind.IDENT, TokenKind.LE, TokenKind.IDENT]

    def test_plus_plus_vs_plus(self):
        assert kinds("a++ + b") == [
            TokenKind.IDENT,
            TokenKind.PLUS_PLUS,
            TokenKind.PLUS,
            TokenKind.IDENT,
        ]

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")


class TestComments:
    def test_line_comment(self):
        assert kinds("a // comment\n b") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_line_comment_at_eof(self):
        assert kinds("a // no newline") == [TokenKind.IDENT]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_marker_comments_are_skipped(self):
        assert kinds("x = 1; //@tag:seed") == [
            TokenKind.IDENT,
            TokenKind.ASSIGN,
            TokenKind.INT_LITERAL,
            TokenKind.SEMI,
        ]


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  bb\n ccc")
        positions = [(t.position.line, t.position.column) for t in tokens[:-1]]
        assert positions == [(1, 1), (2, 3), (3, 2)]

    def test_filename_recorded(self):
        token = tokenize("x", filename="foo.mj")[0]
        assert token.position.filename == "foo.mj"

    def test_position_after_block_comment(self):
        tokens = tokenize("/* a\nb */ x")
        assert tokens[0].position.line == 2


_IDENT = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: s not in KEYWORDS
)


class TestLexerProperties:
    @given(st.lists(_IDENT, min_size=1, max_size=20))
    def test_space_joined_idents_round_trip(self, names):
        tokens = tokenize(" ".join(names))
        assert [t.text for t in tokens[:-1]] == names
        assert all(t.kind is TokenKind.IDENT for t in tokens[:-1])

    @given(st.integers(min_value=0, max_value=10**12))
    def test_int_literals_round_trip(self, value):
        token = tokenize(str(value))[0]
        assert token.kind is TokenKind.INT_LITERAL
        assert int(token.text) == value

    @given(
        st.text(
            alphabet=st.characters(
                whitelist_categories=("Lu", "Ll", "Nd", "Zs"),
                max_codepoint=0x7E,
            ),
            max_size=30,
        )
    )
    def test_string_literal_round_trip(self, content):
        token = tokenize('"' + content + '"')[0]
        assert token.kind is TokenKind.STRING_LITERAL
        assert token.text == content

    @given(st.lists(_IDENT, min_size=1, max_size=10))
    def test_lexing_is_deterministic(self, names):
        text = "(".join(names)
        first = [(t.kind, t.text) for t in tokenize(text)]
        second = [(t.kind, t.text) for t in tokenize(text)]
        assert first == second
