"""Tracer edge cases: statics, postfix on fields, nested containers,
string natives, catch re-entry — the corners of the provenance model."""

from __future__ import annotations

from repro.dynamic import dynamic_thin_slice, trace_and_slice, trace_program
from repro.frontend import compile_source
from repro.lang.source import marker_line


def slice_of(source: str, args=None, output_index: int = 0, stdlib=True):
    return trace_and_slice(
        source, args or [], "edge.mj", include_stdlib=stdlib,
        seed_output_index=output_index,
    )


class TestStaticProvenance:
    def test_static_store_is_producer(self):
        source = """
        class G { static int N; }
        class Main { static void main(String[] args) {
          G.N = args.length + 7;       //@tag:store
          print(G.N);                  //@tag:out
        } }
        """
        run = slice_of(source, stdlib=False)
        assert marker_line(source, "tag", "store") in run.thin.lines

    def test_static_initializer_provenance(self):
        source = """
        class G { static int BASE = 40; }
        class Main { static void main(String[] args) {
          print(G.BASE + 2);           //@tag:out
        } }
        """
        run = slice_of(source, stdlib=False)
        # The initializer line is part of the producer chain.
        assert any(line < marker_line(source, "tag", "out")
                   for line in run.thin.lines)


class TestPostfixProvenance:
    def test_postfix_on_field_produces_both_values(self):
        source = """
        class C { int n; }
        class Main { static void main(String[] args) {
          C c = new C();
          c.n = 5;                     //@tag:init
          int old = c.n++;             //@tag:bump
          print(old);                  //@tag:out
          print(c.n);
        } }
        """
        run = slice_of(source, stdlib=False)
        assert marker_line(source, "tag", "init") in run.thin.lines
        # the new value read by the second print chains through the bump
        run2 = slice_of(source, output_index=1, stdlib=False)
        assert marker_line(source, "tag", "bump") in run2.thin.lines


class TestNestedContainers:
    def test_value_through_three_levels(self):
        source = """
        class Main { static void main(String[] args) {
          HashMap outer = new HashMap();
          TreeMap inner = new TreeMap();
          outer.put("t", inner);
          inner.add("k", "payload");   //@tag:insert
          TreeMap got = (TreeMap) outer.get("t");
          print((String) got.getFirst("k"));   //@tag:out
        } }
        """
        run = slice_of(source)
        assert marker_line(source, "tag", "insert") in run.thin.lines
        # Dynamic thin stays far below dynamic traditional.
        assert len(run.thin.lines) * 2 <= len(run.traditional.lines)


class TestNativeProvenance:
    def test_substring_links_receiver_and_args(self):
        source = """
        class Main { static void main(String[] args) {
          String s = args[0];          //@tag:read
          int cut = s.indexOf("-");    //@tag:cut
          print(s.substring(0, cut));  //@tag:out
        } }
        """
        run = slice_of(source, ["left-right"], stdlib=False)
        assert marker_line(source, "tag", "read") in run.thin.lines
        assert marker_line(source, "tag", "cut") in run.thin.lines

    def test_native_fault_becomes_error_event(self):
        source = """
        class Main { static void main(String[] args) {
          String s = "ab";
          print(s.substring(0, 9));
        } }
        """
        compiled = compile_source(source, include_stdlib=True)
        trace = trace_program(compiled.ast, compiled.table, [])
        assert trace.error_class == "StringIndexOutOfBoundsException"
        assert trace.error_event is not None


class TestCatchReentry:
    def test_second_iteration_after_catch(self):
        source = """
        class E { E() {} }
        class Main { static void main(String[] args) {
          int total = 0;
          for (int i = 0; i < 3; i++) {
            try {
              if (i == 1) { throw new E(); }
              total = total + 10;      //@tag:add
            } catch (E e) {
              total = total + 1;       //@tag:recover
            }
          }
          print(total);                //@tag:out
        } }
        """
        run = slice_of(source, stdlib=False)
        compiled = compile_source(source, include_stdlib=False)
        from repro.interp.interpreter import run_program

        assert run_program(compiled.ast, compiled.table, []).output == ["21"]
        assert marker_line(source, "tag", "add") in run.thin.lines
        assert marker_line(source, "tag", "recover") in run.thin.lines


class TestSeedSelection:
    def test_slice_per_output_event_differs(self):
        source = """
        class Main { static void main(String[] args) {
          int a = 1;                   //@tag:a
          int b = 2;                   //@tag:b
          print(a);
          print(b);
        } }
        """
        first = slice_of(source, output_index=0, stdlib=False)
        second = slice_of(source, output_index=1, stdlib=False)
        assert marker_line(source, "tag", "a") in first.thin.lines
        assert marker_line(source, "tag", "a") not in second.thin.lines
        assert marker_line(source, "tag", "b") in second.thin.lines
