"""SDG construction tests: edge kinds, parameter nodes, heap modes."""

from __future__ import annotations

import pytest

from repro.analysis.modref import compute_modref
from repro.analysis.pointsto import solve_points_to
from repro.frontend import compile_source
from repro.ir import instructions as ins
from repro.sdg.nodes import EdgeKind, ParamNode, StmtNode
from repro.sdg.sdg import SDG, SDGBudgetExceeded, build_sdg


def analyze(source: str, stdlib: bool = False, heap_mode: str = "direct"):
    compiled = compile_source(source, include_stdlib=stdlib)
    pts = solve_points_to(compiled.ir)
    modref = compute_modref(compiled.ir, pts) if heap_mode == "params" else None
    sdg = build_sdg(compiled, pts, heap_mode=heap_mode, modref=modref)
    return compiled, pts, sdg


def edges_of_kind(sdg: SDG, kind: EdgeKind):
    for node, deps in sdg.deps.items():
        for dep, k in deps:
            if k is kind:
                yield node, dep


def node_for(sdg: SDG, instr):
    nodes = sdg.nodes_of_instruction(instr)
    assert nodes, f"no SDG node for {instr}"
    return nodes[0]


class TestLocalFlow:
    SOURCE = """
    class Box { Object f; }
    class Main {
      static void main(String[] args) {
        Box b = new Box();
        Object v = args;
        b.f = v;
        Object r = b.f;
        print(r);
      }
    }
    """

    def test_flow_edges_follow_ssa_defuse(self):
        compiled, pts, sdg = analyze(self.SOURCE)
        assert any(True for _ in edges_of_kind(sdg, EdgeKind.FLOW))

    def test_field_load_base_is_base_edge(self):
        compiled, pts, sdg = analyze(self.SOURCE)
        loads = [
            i
            for i in compiled.ir.functions["Main.main"].instructions()
            if isinstance(i, ins.FieldLoad)
        ]
        node = node_for(sdg, loads[0])
        kinds = {k for _, k in sdg.dependencies(node)}
        assert EdgeKind.BASE in kinds
        assert EdgeKind.HEAP in kinds

    def test_heap_edge_links_load_to_store(self):
        compiled, pts, sdg = analyze(self.SOURCE)
        fn = compiled.ir.functions["Main.main"]
        load = next(i for i in fn.instructions() if isinstance(i, ins.FieldLoad))
        store = next(i for i in fn.instructions() if isinstance(i, ins.FieldStore))
        deps = sdg.dependencies(node_for(sdg, load))
        assert (node_for(sdg, store), EdgeKind.HEAP) in deps

    def test_store_value_is_flow_edge(self):
        compiled, pts, sdg = analyze(self.SOURCE)
        fn = compiled.ir.functions["Main.main"]
        store = next(i for i in fn.instructions() if isinstance(i, ins.FieldStore))
        kinds = {k for _, k in sdg.dependencies(node_for(sdg, store))}
        assert EdgeKind.FLOW in kinds and EdgeKind.BASE in kinds

    def test_control_edges_present(self):
        compiled, pts, sdg = analyze(
            "class Main { static void main(String[] args) {"
            " if (args.length > 0) { print(1); } } }"
        )
        assert any(True for _ in edges_of_kind(sdg, EdgeKind.CONTROL))

    def test_control_excluded_when_disabled(self):
        compiled = compile_source(
            "class Main { static void main(String[] args) {"
            " if (args.length > 0) { print(1); } } }"
        )
        pts = solve_points_to(compiled.ir)
        sdg = build_sdg(compiled, pts, include_control=False)
        assert not any(True for _ in edges_of_kind(sdg, EdgeKind.CONTROL))


class TestInterprocedural:
    SOURCE = """
    class Main {
      static int twice(int x) { return x + x; }
      static void main(String[] args) {
        int n = args.length;
        print(twice(n));
      }
    }
    """

    def test_actual_in_nodes_created(self):
        compiled, pts, sdg = analyze(self.SOURCE)
        actual_ins = [
            n for n in sdg.nodes if isinstance(n, ParamNode) and n.role == "actual_in"
        ]
        assert actual_ins

    def test_param_in_edge_from_formal_to_actual(self):
        compiled, pts, sdg = analyze(self.SOURCE)
        pairs = [
            (formal, actual)
            for formal, actual in edges_of_kind(sdg, EdgeKind.PARAM_IN)
            if isinstance(formal, ParamNode) and formal.role == "formal_in"
        ]
        assert pairs
        formal, actual = pairs[0]
        assert isinstance(actual, ParamNode) and actual.role == "actual_in"

    def test_entry_node_links_to_call_sites(self):
        compiled, pts, sdg = analyze(self.SOURCE)
        entries = [
            (formal, dep)
            for formal, dep in edges_of_kind(sdg, EdgeKind.PARAM_IN)
            if isinstance(formal, ParamNode) and formal.role == "entry"
        ]
        assert entries  # callee entry depends on the call statement
        entry, call_stmt = next(
            (e, c) for e, c in entries if e.function == "Main.twice"
        )
        assert isinstance(call_stmt, StmtNode)
        assert isinstance(call_stmt.instr, ins.Call)

    def test_interprocedural_control_reaches_caller(self):
        """Traditional slicing from inside a callee includes the call
        site and its governing conditional (HRB semantics)."""
        source = """
        class Main {
          static void log() { print(1); }
          static void main(String[] args) {
            if (args.length > 0) {
              log();
            }
          }
        }
        """
        compiled, pts, sdg = analyze(source)
        from repro.slicing.traditional import TraditionalSlicer
        from repro.slicing.thin import ThinSlicer

        print_line = next(
            i.position.line
            for i in compiled.ir.functions["Main.log"].instructions()
            if isinstance(i, ins.Call)
        )
        trad = TraditionalSlicer(compiled, sdg).slice_from_line(print_line)
        source_lines = compiled.source.lines()
        sliced_text = "\n".join(source_lines[l - 1] for l in trad.lines)
        assert "log();" in sliced_text
        assert "args.length > 0" in sliced_text
        # ...while the thin slice never ascends through control.
        thin = ThinSlicer(compiled, sdg).slice_from_line(print_line)
        thin_text = "\n".join(source_lines[l - 1] for l in thin.lines)
        assert "args.length" not in thin_text

    def test_return_flows_through_formal_out(self):
        compiled, pts, sdg = analyze(self.SOURCE)
        call = next(
            i
            for i in compiled.ir.functions["Main.main"].instructions()
            if isinstance(i, ins.Call) and i.kind == "static"
        )
        deps = sdg.dependencies(node_for(sdg, call))
        formal_outs = [d for d, k in deps if k is EdgeKind.PARAM_OUT]
        assert len(formal_outs) == 1
        ret_deps = sdg.dependencies(formal_outs[0])
        assert any(
            isinstance(d, StmtNode) and isinstance(d.instr, ins.Return)
            for d, _ in ret_deps
        )

    def test_virtual_call_binds_all_targets(self):
        source = """
        class A { int m() { return 1; } }
        class B extends A { int m() { return 2; } }
        class Main {
          static void main(String[] args) {
            A x = new A(); if (args.length > 0) { x = new B(); }
            print(x.m());
          }
        }
        """
        compiled, pts, sdg = analyze(source)
        call = next(
            i
            for i in compiled.ir.functions["Main.main"].instructions()
            if isinstance(i, ins.Call) and i.kind == "virtual"
        )
        deps = sdg.dependencies(node_for(sdg, call))
        formal_outs = {d.function for d, k in deps if k is EdgeKind.PARAM_OUT}
        assert formal_outs == {"A.m", "B.m"}

    def test_catch_edge(self):
        source = """
        class E { E() {} }
        class Main { static void main(String[] args) {
          try { throw new E(); } catch (E e) { print(e); }
        } }
        """
        compiled, pts, sdg = analyze(source)
        assert any(True for _ in edges_of_kind(sdg, EdgeKind.CATCH))

    def test_array_length_links_to_allocation(self):
        source = """
        class Main { static void main(String[] args) {
          int n = args.length + 2;
          int[] a = new int[n];
          print(a.length);
        } }
        """
        compiled, pts, sdg = analyze(source)
        length = next(
            i
            for i in compiled.ir.functions["Main.main"].instructions()
            if isinstance(i, ins.ArrayLength)
            and i.base.startswith("a~")
        )
        deps = sdg.dependencies(node_for(sdg, length))
        assert any(
            isinstance(d, StmtNode) and isinstance(d.instr, ins.NewArray)
            for d, k in deps
            if k is EdgeKind.HEAP
        )


class TestInstanceCloning:
    SOURCE = """
    class A {} class B {}
    class Main {
      static void main(String[] args) {
        Vector v1 = new Vector();
        Vector v2 = new Vector();
        v1.add(new A());
        v2.add(new B());
        print(v1.get(0));
        print(v2.get(0));
      }
    }
    """

    def test_container_methods_cloned(self):
        compiled, pts, sdg = analyze(self.SOURCE, stdlib=True)
        get_fn = compiled.ir.functions["Vector.get"]
        some_instr = next(get_fn.instructions())
        assert len(sdg.nodes_of_instruction(some_instr)) == 2

    def test_clones_have_separate_heap_edges(self):
        compiled, pts, sdg = analyze(self.SOURCE, stdlib=True)
        get_fn = compiled.ir.functions["Vector.get"]
        load = next(
            i for i in get_fn.instructions() if isinstance(i, ins.ArrayLoad)
        )
        nodes = sdg.nodes_of_instruction(load)
        heap_targets = {
            frozenset(
                d for d, k in sdg.dependencies(n) if k is EdgeKind.HEAP
            )
            for n in nodes
        }
        # The two clones must read from different store sets.
        assert len(heap_targets) == 2


class TestHeapParamsMode:
    SOURCE = """
    class Box { int v; }
    class Main {
      static void write(Box b) { b.v = 7; }
      static int read(Box b) { return b.v; }
      static void main(String[] args) {
        Box b = new Box();
        write(b);
        print(read(b));
      }
    }
    """

    def test_requires_modref(self):
        compiled = compile_source(self.SOURCE)
        pts = solve_points_to(compiled.ir)
        with pytest.raises(ValueError, match="mod-ref"):
            build_sdg(compiled, pts, heap_mode="params")

    def test_heap_formals_created(self):
        compiled, pts, sdg = analyze(self.SOURCE, heap_mode="params")
        heap_formals = [
            n
            for n in sdg.nodes
            if isinstance(n, ParamNode) and n.slot.startswith("heap:")
        ]
        assert heap_formals

    def test_params_mode_has_more_nodes_than_direct(self):
        compiled, pts, sdg_params = analyze(self.SOURCE, heap_mode="params")
        _, _, sdg_direct = analyze(self.SOURCE, heap_mode="direct")
        assert sdg_params.node_count() > sdg_direct.node_count()

    def test_node_budget_enforced(self):
        compiled = compile_source(self.SOURCE, include_stdlib=True)
        pts = solve_points_to(compiled.ir)
        modref = compute_modref(compiled.ir, pts)
        with pytest.raises(SDGBudgetExceeded):
            build_sdg(
                compiled, pts, heap_mode="params", modref=modref, node_budget=10
            )

    def test_unknown_heap_mode_rejected(self):
        compiled = compile_source(self.SOURCE)
        pts = solve_points_to(compiled.ir)
        with pytest.raises(ValueError, match="heap_mode"):
            build_sdg(compiled, pts, heap_mode="bogus")


class TestCounts:
    def test_statement_vs_param_counts(self):
        compiled, pts, sdg = analyze(
            "class Main { static int f(int x) { return x; }"
            " static void main(String[] args) { print(f(1)); } }"
        )
        assert sdg.statement_count() > 0
        assert sdg.param_node_count() > 0
        assert sdg.node_count() == sdg.statement_count() + sdg.param_node_count()

    def test_edge_count_matches_dedup(self):
        compiled, pts, sdg = analyze(
            "class Main { static void main(String[] args) { print(args.length); } }"
        )
        total = sum(len(deps) for deps in sdg.deps.values())
        assert total == sdg.edge_count()
