"""Incremental (warm-edit) analysis: the byte-identity contract.

The engine's one non-negotiable: an edit served from a live
:class:`repro.incremental.IncrementalSession` must produce an artifact
**byte-identical** to a cold analysis of the same text — whatever tier
(relocate / delta / resolve) served it.  Everything else (declines,
dead sessions) must fall back to cold, never fabricate.
"""

from __future__ import annotations

import random
import time

import pytest

from repro import AnalyzeOptions, analyze
from repro.artifact.encode import content_key, encode_artifact
from repro.incremental import (
    DeclinedError,
    IncrementalSession,
    split_units,
)
from repro.suite.loader import load_source, program_names
from tests.conftest import make_server


def _cold_payload(
    source: str, options: AnalyzeOptions, filename: str = "<input>"
) -> bytes:
    analyzed = analyze(source, filename, options=options)
    return encode_artifact(
        analyzed, key=content_key(source, options), include_rich=False
    )


def _session(source: str, options: AnalyzeOptions) -> IncrementalSession:
    analyzed = analyze(source, "<input>", options=options)
    return IncrementalSession.from_analyzed(
        analyzed,
        source,
        payload=encode_artifact(
            analyzed, key=content_key(source, options), include_rich=False
        ),
    )


def _method_spans(source: str):
    """Multi-line method/constructor units, where statement edits land."""
    shape = split_units(source)
    return [
        u
        for u in shape.units
        if u.kind == "method" and u.end_line > u.start_line
    ]


def _insert_stmt(source: str, index: int | None = None) -> str:
    """Insert a string-typed statement into a method body."""
    spans = _method_spans(source)
    unit = spans[(len(spans) // 2 if index is None else index) % len(spans)]
    lines = source.split("\n")
    lines.insert(unit.end_line - 1, '        String __t = "probe";')
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Byte-identity across the whole suite
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", program_names())
def test_single_function_edit_is_byte_identical(name):
    source = load_source(name)
    if not _method_spans(source):
        pytest.skip("no multi-line method to edit")
    options = AnalyzeOptions()
    session = _session(source, options)
    edited = _insert_stmt(source)
    outcome = session.apply_edit(edited)
    assert outcome.payload == _cold_payload(edited, options), outcome.tier
    assert outcome.functions_reanalyzed >= 1
    spans = _method_spans(source)
    if len(spans) > 1:
        assert outcome.functions_reused >= 1


@pytest.mark.parametrize("name", program_names())
def test_comment_shift_relocates_byte_identical(name):
    """A zero-dirty edit (pure line shift) takes the relocate tier."""
    source = load_source(name)
    options = AnalyzeOptions()
    session = _session(source, options)
    edited = "// shifted\n" + source
    outcome = session.apply_edit(edited)
    assert outcome.tier == "relocate"
    assert outcome.functions_reanalyzed == 0
    assert outcome.payload == _cold_payload(edited, options)


def test_multi_edit_session_stays_byte_identical():
    """Successive edits against one session, mixing tiers."""
    source = load_source("figure1")
    options = AnalyzeOptions()
    session = _session(source, options)
    current = source
    tiers = []
    for step in range(4):
        if step % 2 == 0:
            lines = current.split("\n")
            spans = _method_spans(current)
            unit = spans[step % len(spans)]
            lines.insert(
                unit.end_line - 1, f'        String __s{step} = "e{step}";'
            )
            current = "\n".join(lines)
        else:
            current = f"// session step {step}\n" + current
        outcome = session.apply_edit(current)
        tiers.append(outcome.tier)
        assert outcome.payload == _cold_payload(current, options), (
            f"step {step} ({outcome.tier}) diverged"
        )
    assert "relocate" in tiers  # the comment steps shift only lines


def test_relocate_then_dirty_edit_uses_fresh_coordinates():
    """Regression: a relocate-tier edit must shift the in-memory graph
    too, or the next dirty edit relocates stale positions (found by the
    edit-session fuzzer as an LINE/LKEY byte mismatch)."""
    source = load_source("figure1")
    options = AnalyzeOptions()
    session = _session(source, options)
    shifted = "// shift one\n// shift two\n" + source
    assert session.apply_edit(shifted).tier == "relocate"
    edited = _insert_stmt(shifted)
    outcome = session.apply_edit(edited)
    assert outcome.tier in ("delta", "resolve")
    assert outcome.payload == _cold_payload(edited, options)


def test_call_graph_shape_edit_is_byte_identical():
    """Duplicating a call statement adds a call site (new call-graph
    edges) — the warm-start prefix rule must still reproduce cold."""
    candidates = []
    for name in program_names():
        source = load_source(name)
        lines = source.split("\n")
        for unit in _method_spans(source):
            for i in range(unit.start_line, unit.end_line - 1):
                text = lines[i].strip()
                if (
                    text.endswith(");")
                    and "(" in text
                    and "=" not in text
                    and not text.startswith(("if", "while", "for", "return"))
                ):
                    candidates.append((name, i))
                    break
            if candidates and candidates[-1][0] == name:
                break
    assert candidates, "no call-statement line found in the suite"
    checked = 0
    for name, line_index in candidates[:3]:
        source = load_source(name)
        options = AnalyzeOptions()
        lines = source.split("\n")
        lines.insert(line_index, lines[line_index])
        edited = "\n".join(lines)
        try:
            cold = _cold_payload(edited, options)
        except Exception:
            continue  # duplication happened to be invalid here
        session = _session(source, options)
        outcome = session.apply_edit(edited)
        assert outcome.payload == cold, (name, outcome.tier)
        checked += 1
    assert checked >= 1


# ---------------------------------------------------------------------------
# Declines: out-of-scope edits fall back to cold, session intact
# ---------------------------------------------------------------------------


def test_signature_change_declines_structure():
    source = load_source("figure2")
    session = _session(source, AnalyzeOptions())
    # Renaming a method changes the structure fingerprint.
    assert "void main" in source
    edited = source.replace("void main", "void renamed_main", 1)
    with pytest.raises(DeclinedError) as info:
        session.apply_edit(edited)
    assert info.value.reason == "structure-changed"
    assert not session.dead


def test_parse_error_edit_declines_and_session_survives():
    source = load_source("figure1")
    options = AnalyzeOptions()
    session = _session(source, options)
    spans = _method_spans(source)
    lines = source.split("\n")
    lines.insert(spans[0].end_line - 1, "        String broken = ;")
    with pytest.raises(DeclinedError):
        session.apply_edit("\n".join(lines))
    assert not session.dead
    # The session still serves valid edits afterwards.
    edited = _insert_stmt(source)
    outcome = session.apply_edit(edited)
    assert outcome.payload == _cold_payload(edited, options)


def test_type_error_edit_declines_frontend():
    source = load_source("figure1")
    session = _session(source, AnalyzeOptions())
    spans = _method_spans(source)
    lines = source.split("\n")
    lines.insert(spans[0].end_line - 1, "        String dup = undefined_x;")
    with pytest.raises(DeclinedError) as info:
        session.apply_edit("\n".join(lines))
    assert info.value.reason == "frontend-error"
    assert not session.dead


# ---------------------------------------------------------------------------
# Serving tier: two-level cache key, counters, stats
# ---------------------------------------------------------------------------


def test_cache_serves_edits_incrementally(tmp_path):
    from repro.server.cache import AnalysisCache
    from repro.server.fragments import FragmentStore
    from repro.server.store import DiskStore

    cache = AnalysisCache(
        store=DiskStore(tmp_path), fragments=FragmentStore()
    )
    source = load_source("figure1")
    options = AnalyzeOptions()

    _, origin = cache.get_entry(source, "fig1.mj", options)
    assert origin == "analyzed"
    _, origin = cache.get_entry(source, "fig1.mj", options)
    assert origin == "memory"

    edited = _insert_stmt(source)
    entry, origin = cache.get_entry(edited, "fig1.mj", options)
    assert origin == "incremental"
    assert bytes(entry.view._buffer) == _cold_payload(
        edited, options, filename="fig1.mj"
    )

    # The incremental result was promoted to both cache tiers.
    _, origin = cache.get_entry(edited, "fig1.mj", options)
    assert origin == "memory"

    edited2 = "// another\n" + edited
    _, origin = cache.get_entry(edited2, "fig1.mj", options)
    assert origin == "incremental"

    stats = cache.stats()
    assert stats["incremental_hits"] == 2
    frags = stats["fragments"]
    assert frags["incremental_hits"] == 2
    assert frags["sessions_seeded"] == 1
    assert frags["functions_reused"] >= 1
    assert sum(frags["tiers"].values()) == 2


def test_structure_changed_edit_falls_back_to_cold(tmp_path):
    from repro.server.cache import AnalysisCache
    from repro.server.fragments import FragmentStore
    from repro.server.store import DiskStore

    cache = AnalysisCache(
        store=DiskStore(tmp_path), fragments=FragmentStore()
    )
    source = load_source("figure2")
    options = AnalyzeOptions()
    cache.get_entry(source, "fig2.mj", options)
    edited = source.replace("void main", "void renamed_main", 1)
    _, origin = cache.get_entry(edited, "fig2.mj", options)
    assert origin == "analyzed"  # new lineage, cold analysis
    # A same-structure edit of the *new* text is then served warm.
    edited2 = "// shift\n" + edited
    _, origin = cache.get_entry(edited2, "fig2.mj", options)
    assert origin == "incremental"


def test_daemon_health_reports_incremental_counters():
    import json


    server = make_server(None)
    try:
        source = load_source("figure1")
        for text in (source, _insert_stmt(source)):
            response = json.loads(
                server.handle_line(
                    json.dumps(
                        {
                            "id": 1,
                            "method": "stats",
                            "params": {"source": text},
                        }
                    )
                )
            )
            assert "result" in response, response
        health = json.loads(
            server.handle_line(json.dumps({"id": 2, "method": "health"}))
        )["result"]
        assert health["incremental_hits"] == 1
        assert health["functions_reused"] >= 1
        assert health["functions_reanalyzed"] >= 1
        assert health["fragments"]["sessions"] == 1
    finally:
        server.close()


def test_daemon_no_incremental_flag_disables_fragments():
    import json


    server = make_server(None, incremental=False)
    try:
        source = load_source("figure1")
        for text in (source, _insert_stmt(source)):
            server.handle_line(
                json.dumps(
                    {"id": 1, "method": "stats", "params": {"source": text}}
                )
            )
        health = json.loads(
            server.handle_line(json.dumps({"id": 2, "method": "health"}))
        )["result"]
        assert "fragments" not in health
    finally:
        server.close()


# ---------------------------------------------------------------------------
# The edit-session fuzz oracle, pinned
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ["figure1", "minixml"])
def test_edit_session_oracle_passes(name):
    from repro.fuzz import check_edit_session

    result = check_edit_session(
        load_source(name), random.Random(7), steps=4
    )
    assert result.verdict == "ok", (result.error_type, result.message)
    assert result.steps_checked >= 1


# ---------------------------------------------------------------------------
# Perf guard
# ---------------------------------------------------------------------------


@pytest.mark.perf
def test_warm_edit_beats_cold():
    """A warm edit must clearly beat a cold re-analysis (≥2x).

    The relocate tier rewrites a few artifact sections (typically tens
    of microseconds against tens of milliseconds cold); 2x only trips
    if the incremental path starts re-running the pipeline.  Absolute
    latencies vary too much on loaded 1-core CI boxes for a tighter
    bound — the honest envelopes live in results/BENCH_incremental.json.
    """
    name = "minijavac"
    source = load_source(name)
    options = AnalyzeOptions()
    session = _session(source, options)

    shifted = "// perf probe\n" + source
    cold_s = None
    start = time.perf_counter()
    analyze(shifted, "<input>", options=options)
    cold_s = time.perf_counter() - start

    warm_s = None
    current = shifted
    best = float("inf")
    for i in range(3):
        current = f"// perf probe {i}\n" + current
        start = time.perf_counter()
        outcome = session.apply_edit(current)
        best = min(best, time.perf_counter() - start)
        assert outcome.tier == "relocate"
    warm_s = best

    assert warm_s * 2 <= cold_s, (
        f"warm edit {warm_s * 1000:.1f}ms not 2x faster than cold "
        f"{cold_s * 1000:.1f}ms"
    )
