"""Cache correctness: keying, the two tiers, and corruption tolerance."""

from __future__ import annotations

import struct

import pytest

from repro import AnalyzeOptions
from repro.artifact import ARTIFACT_FORMAT, MAGIC
from repro.server.cache import AnalysisCache, cache_key
from repro.server.store import DiskStore

SMALL = 'class Main { static void main(String[] args) { print("a"); } }'
OTHER = 'class Main { static void main(String[] args) { print("b"); } }'

# Tiny analyses: skip the stdlib so each test runs in milliseconds.
OPTIONS = AnalyzeOptions(include_stdlib=False)


class TestCacheKey:
    def test_same_source_same_options_same_key(self):
        assert cache_key(SMALL, OPTIONS) == cache_key(SMALL, OPTIONS)

    def test_key_ignores_filename(self):
        cache = AnalysisCache()
        cache.get_or_analyze(SMALL, "a.mj", OPTIONS)
        _, origin = cache.get_or_analyze(SMALL, "b.mj", OPTIONS)
        assert origin == "memory"

    def test_different_source_different_key(self):
        assert cache_key(SMALL, OPTIONS) != cache_key(OTHER, OPTIONS)

    def test_whitespace_change_is_different_content(self):
        assert cache_key(SMALL, OPTIONS) != cache_key(SMALL + "\n", OPTIONS)

    def test_options_distinguish_keys(self):
        variants = [
            AnalyzeOptions(include_stdlib=True),
            AnalyzeOptions(include_stdlib=False),
            AnalyzeOptions(include_stdlib=False, containers=None),
            AnalyzeOptions(include_stdlib=False, heap_mode="params"),
            AnalyzeOptions(include_stdlib=False, include_control=False),
        ]
        keys = {cache_key(SMALL, options) for options in variants}
        assert len(keys) == len(variants)


class TestMemoryTier:
    def test_identical_resubmission_hits(self):
        cache = AnalysisCache()
        first, origin1 = cache.get_or_analyze(SMALL, "a.mj", OPTIONS)
        second, origin2 = cache.get_or_analyze(SMALL, "a.mj", OPTIONS)
        assert (origin1, origin2) == ("analyzed", "memory")
        assert first is second
        assert cache.memory_hits == 1 and cache.misses == 1

    def test_same_source_different_options_misses(self):
        cache = AnalysisCache()
        cache.get_or_analyze(SMALL, "a.mj", OPTIONS)
        _, origin = cache.get_or_analyze(
            SMALL, "a.mj", AnalyzeOptions(include_stdlib=False, containers=None)
        )
        assert origin == "analyzed"
        assert cache.misses == 2 and cache.memory_hits == 0

    def test_lru_eviction(self):
        cache = AnalysisCache(capacity=1)
        cache.get_or_analyze(SMALL, "a.mj", OPTIONS)
        cache.get_or_analyze(OTHER, "b.mj", OPTIONS)
        assert cache.evictions == 1
        assert len(cache) == 1
        # The evicted entry is re-analyzed on the next request.
        _, origin = cache.get_or_analyze(SMALL, "a.mj", OPTIONS)
        assert origin == "analyzed"

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            AnalysisCache(capacity=0)


class TestDiskTier:
    def test_restart_loads_from_disk_without_reanalysis(self, tmp_path, monkeypatch):
        cache = AnalysisCache(store=DiskStore(tmp_path))
        cache.get_or_analyze(SMALL, "a.mj", OPTIONS)
        # A fresh cache over the same store simulates a daemon restart.
        restarted = AnalysisCache(store=DiskStore(tmp_path))
        # Prove no re-analysis happens: analyze() must not be reachable.
        monkeypatch.setattr(
            "repro.server.cache.analyze",
            lambda *a, **k: pytest.fail("re-analyzed a stored artifact"),
        )
        analyzed, origin = restarted.get_or_analyze(SMALL, "a.mj", OPTIONS)
        assert origin == "disk"
        assert restarted.disk_hits == 1 and restarted.misses == 0
        assert analyzed.sdg.statement_count() > 0

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        AnalysisCache(store=DiskStore(tmp_path)).get_or_analyze(
            SMALL, "a.mj", OPTIONS
        )
        restarted = AnalysisCache(store=DiskStore(tmp_path))
        _, first = restarted.get_or_analyze(SMALL, "a.mj", OPTIONS)
        _, second = restarted.get_or_analyze(SMALL, "a.mj", OPTIONS)
        assert (first, second) == ("disk", "memory")

    def test_corrupted_artifact_quarantined_and_recomputed(self, tmp_path):
        store = DiskStore(tmp_path)
        AnalysisCache(store=store).get_or_analyze(SMALL, "a.mj", OPTIONS)
        path = store.path_for(cache_key(SMALL, OPTIONS))
        path.write_bytes(b"\x80\x04 this is not an artifact")
        fresh_store = DiskStore(tmp_path)
        cache = AnalysisCache(store=fresh_store)
        analyzed, origin = cache.get_or_analyze(SMALL, "a.mj", OPTIONS)
        assert origin == "analyzed"
        # Corrupt bytes are evidence: moved to corrupt/, not unlinked.
        assert fresh_store.stats.quarantined == 1
        assert fresh_store.stats.corrupt_found == 1
        assert (fresh_store.corrupt_dir / path.name).exists()
        assert analyzed.sdg.statement_count() > 0
        # The bad file was replaced by a good artifact.
        again = AnalysisCache(store=DiskStore(tmp_path))
        _, origin = again.get_or_analyze(SMALL, "a.mj", OPTIONS)
        assert origin == "disk"

    def test_truncated_artifact_quarantined(self, tmp_path):
        store = DiskStore(tmp_path)
        AnalysisCache(store=store).get_or_analyze(SMALL, "a.mj", OPTIONS)
        path = store.path_for(cache_key(SMALL, OPTIONS))
        path.write_bytes(path.read_bytes()[: 100])
        fresh = DiskStore(tmp_path)
        assert fresh.load(cache_key(SMALL, OPTIONS)) is None
        assert not path.exists()
        assert fresh.stats.quarantined == 1
        assert (fresh.corrupt_dir / path.name).exists()

    def test_stale_format_version_discarded(self, tmp_path):
        store = DiskStore(tmp_path)
        AnalysisCache(store=store).get_or_analyze(SMALL, "a.mj", OPTIONS)
        key = cache_key(SMALL, OPTIONS)
        path = store.path_for(key)
        # Patch the u32 format field that follows the 8-byte magic, as
        # an artifact written by a future incompatible encoder would be.
        blob = bytearray(path.read_bytes())
        assert blob[: len(MAGIC)] == MAGIC
        struct.pack_into("<I", blob, len(MAGIC), ARTIFACT_FORMAT + 1)
        path.write_bytes(bytes(blob))
        fresh = DiskStore(tmp_path)
        assert fresh.load(key) is None
        assert fresh.stats.discarded == 1

    def test_key_mismatch_discarded(self, tmp_path):
        store = DiskStore(tmp_path)
        AnalysisCache(store=store).get_or_analyze(SMALL, "a.mj", OPTIONS)
        good = store.path_for(cache_key(SMALL, OPTIONS))
        other_key = cache_key(OTHER, OPTIONS)
        moved = store.path_for(other_key)
        moved.parent.mkdir(parents=True, exist_ok=True)
        moved.write_bytes(good.read_bytes())
        assert DiskStore(tmp_path).load(other_key) is None

    def test_missing_artifact_counts_as_miss(self, tmp_path):
        store = DiskStore(tmp_path)
        assert store.load("0" * 64) is None
        assert store.stats.misses == 1 and store.stats.discarded == 0

    def test_save_failure_is_nonfatal(self, tmp_path, monkeypatch):
        store = DiskStore(tmp_path)
        monkeypatch.setattr(
            "repro.server.store.encode_artifact",
            lambda *a, **k: (_ for _ in ()).throw(OSError("disk full")),
        )
        cache = AnalysisCache(store=store)
        _, origin = cache.get_or_analyze(SMALL, "a.mj", OPTIONS)
        assert origin == "analyzed"
        assert store.stats.save_errors == 1


class TestLegacyMigration:
    """Format-2 pickle envelopes are honored once and retired flat."""

    def _seed_legacy(self, tmp_path):
        analyzed, _ = AnalysisCache(store=None).get_or_analyze(
            SMALL, "a.mj", OPTIONS
        )
        key = cache_key(SMALL, OPTIONS)
        store = DiskStore(tmp_path)
        store.write_legacy_pickle(key, analyzed)
        return store, key

    def test_legacy_pickle_is_served_and_migrated(self, tmp_path):
        store, key = self._seed_legacy(tmp_path)
        assert store.legacy_path_for(key).exists()
        assert not store.path_for(key).exists()
        view = store.load_view(key)
        assert view is not None
        assert view.counts["sdg_statements"] > 0
        # The pickle is gone, the flat artifact is in its place.
        assert not store.legacy_path_for(key).exists()
        assert store.path_for(key).exists()
        assert store.stats.migrated == 1 and store.stats.hits == 1

    def test_migrated_artifact_serves_flat_next_time(self, tmp_path):
        store, key = self._seed_legacy(tmp_path)
        store.load_view(key)
        fresh = DiskStore(tmp_path)
        view = fresh.load_view(key)
        assert view is not None
        assert fresh.stats.migrated == 0 and fresh.stats.hits == 1
        view.close()

    def test_legacy_hit_counts_as_disk_origin(self, tmp_path):
        store, key = self._seed_legacy(tmp_path)
        cache = AnalysisCache(store=store)
        analyzed, origin = cache.get_or_analyze(SMALL, "a.mj", OPTIONS)
        assert origin == "disk"
        assert analyzed.sdg.statement_count() > 0

    def test_stale_legacy_envelope_discarded(self, tmp_path):
        store, key = self._seed_legacy(tmp_path)
        path = store.legacy_path_for(key)
        path.write_bytes(b"\x80\x04 not an envelope")
        assert store.load_view(key) is None
        assert store.stats.discarded == 1
        assert not path.exists()


class TestPrune:
    @staticmethod
    def _fill(store, analyzed, count):
        """Save one artifact under ``count`` distinct keys with strictly
        increasing mtimes (so eviction order is deterministic)."""
        import os

        keys = [f"{i:02x}" + "0" * 62 for i in range(count)]
        for i, key in enumerate(keys):
            store.save(key, analyzed)
            path = store.path_for(key)
            os.utime(path, (1_000_000 + i, 1_000_000 + i))
        return keys

    def test_prune_evicts_oldest_first(self, tmp_path):
        store = DiskStore(tmp_path)
        analyzed, _ = AnalysisCache(store=None).get_or_analyze(
            SMALL, "a.mj", OPTIONS
        )
        keys = self._fill(store, analyzed, 4)
        blob_size = store.path_for(keys[0]).stat().st_size
        remaining = store.prune(2 * blob_size)
        assert remaining <= 2 * blob_size
        assert store.stats.evicted == 2
        assert not store.path_for(keys[0]).exists()
        assert not store.path_for(keys[1]).exists()
        assert store.path_for(keys[2]).exists()
        assert store.path_for(keys[3]).exists()

    def test_prune_noop_under_budget(self, tmp_path):
        store = DiskStore(tmp_path)
        analyzed, _ = AnalysisCache(store=None).get_or_analyze(
            SMALL, "a.mj", OPTIONS
        )
        self._fill(store, analyzed, 2)
        store.prune(10**12)
        assert store.stats.evicted == 0

    def test_save_enforces_size_budget(self, tmp_path):
        probe = DiskStore(tmp_path / "probe")
        analyzed, _ = AnalysisCache(store=None).get_or_analyze(
            SMALL, "a.mj", OPTIONS
        )
        probe.save("0" * 64, analyzed)
        blob_size = probe.path_for("0" * 64).stat().st_size

        store = DiskStore(tmp_path / "store", max_bytes=2 * blob_size)
        self._fill(store, analyzed, 5)
        kept = list((tmp_path / "store").glob("*/*.art"))
        assert len(kept) <= 2
        assert store.stats.evicted >= 3
        assert store.stats.saves == 5
