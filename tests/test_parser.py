"""Parser unit tests: program structure, statements, expressions."""

from __future__ import annotations

import pytest

from repro.lang import ast
from repro.lang.errors import ParseError
from repro.lang.parser import parse_expression, parse_program
from repro.lang.types import ArrayType, ClassType, INT, VOID


def parse_single_class(body: str) -> ast.ClassDecl:
    return parse_program(f"class C {{ {body} }}").classes[0]


def parse_stmts(body: str) -> list[ast.Stmt]:
    cls = parse_single_class(f"void m() {{ {body} }}")
    return cls.methods[0].body.statements


class TestPrograms:
    def test_empty_program(self):
        assert parse_program("").classes == []

    def test_class_with_extends(self):
        cls = parse_program("class A extends B {}").classes[0]
        assert cls.name == "A"
        assert cls.superclass == "B"

    def test_class_without_extends(self):
        assert parse_program("class A {}").classes[0].superclass is None

    def test_multiple_classes(self):
        program = parse_program("class A {} class B {} class C {}")
        assert [c.name for c in program.classes] == ["A", "B", "C"]

    def test_field_declarations(self):
        cls = parse_single_class("int x; static boolean flag; String s = \"hi\";")
        assert [f.name for f in cls.fields] == ["x", "flag", "s"]
        assert cls.fields[1].is_static
        assert isinstance(cls.fields[2].init, ast.StringLit)

    def test_final_field(self):
        cls = parse_single_class("final int op;")
        assert cls.fields[0].is_final

    def test_method_signature(self):
        cls = parse_single_class("static int f(int a, String b) { return a; }")
        method = cls.methods[0]
        assert method.is_static
        assert method.return_type == INT
        assert [p.name for p in method.params] == ["a", "b"]

    def test_constructor_recognized(self):
        cls = parse_program("class C { C(int x) {} }").classes[0]
        assert cls.methods[0].is_constructor
        assert cls.methods[0].name == "<init>"

    def test_method_named_like_other_class_is_not_ctor(self):
        cls = parse_program("class C { int D() { return 1; } }").classes[0]
        assert not cls.methods[0].is_constructor

    def test_array_types(self):
        cls = parse_single_class("int[] a; String[][] b;")
        assert cls.fields[0].declared_type == ArrayType(INT)
        assert cls.fields[1].declared_type == ArrayType(ArrayType(ClassType("String")))

    def test_void_return_type(self):
        cls = parse_single_class("void m() {}")
        assert cls.methods[0].return_type == VOID


class TestStatements:
    def test_var_decl_with_init(self):
        (stmt,) = parse_stmts("int x = 5;")
        assert isinstance(stmt, ast.VarDecl)
        assert stmt.name == "x"

    def test_var_decl_array(self):
        (stmt,) = parse_stmts("int[] xs = new int[3];")
        assert isinstance(stmt, ast.VarDecl)
        assert stmt.declared_type == ArrayType(INT)

    def test_assignment(self):
        (stmt,) = parse_stmts("x = 1;")
        assert isinstance(stmt, ast.Assign)
        assert stmt.op is None

    def test_compound_assignment(self):
        plus, minus = parse_stmts("x += 1; y -= 2;")
        assert plus.op == "+"
        assert minus.op == "-"

    def test_field_assignment(self):
        (stmt,) = parse_stmts("this.f = 1;")
        assert isinstance(stmt.target, ast.FieldAccess)

    def test_array_assignment(self):
        (stmt,) = parse_stmts("a[i] = 1;")
        assert isinstance(stmt.target, ast.ArrayAccess)

    def test_invalid_assignment_target(self):
        with pytest.raises(ParseError):
            parse_stmts("1 + 2 = 3;")

    def test_if_else(self):
        (stmt,) = parse_stmts("if (x) { a = 1; } else { a = 2; }")
        assert isinstance(stmt, ast.If)
        assert stmt.else_branch is not None

    def test_dangling_else_binds_to_nearest_if(self):
        (stmt,) = parse_stmts("if (a) if (b) x = 1; else x = 2;")
        assert stmt.else_branch is None
        inner = stmt.then_branch
        assert isinstance(inner, ast.If)
        assert inner.else_branch is not None

    def test_while(self):
        (stmt,) = parse_stmts("while (x) { y = 1; }")
        assert isinstance(stmt, ast.While)

    def test_for_full(self):
        (stmt,) = parse_stmts("for (int i = 0; i < n; i++) { s = s + i; }")
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.VarDecl)
        assert stmt.condition is not None
        assert isinstance(stmt.update, ast.ExprStmt)

    def test_for_empty_clauses(self):
        (stmt,) = parse_stmts("for (;;) { break; }")
        assert stmt.init is None and stmt.condition is None and stmt.update is None

    def test_return_value_and_void(self):
        ret_value, ret_void = parse_stmts("return 1; return;")
        assert ret_value.value is not None
        assert ret_void.value is None

    def test_break_continue(self):
        brk, cont = parse_stmts("break; continue;")
        assert isinstance(brk, ast.Break)
        assert isinstance(cont, ast.Continue)

    def test_throw(self):
        (stmt,) = parse_stmts("throw new E(\"m\");")
        assert isinstance(stmt, ast.Throw)

    def test_try_catch(self):
        (stmt,) = parse_stmts("try { x = 1; } catch (E e) { y = 2; }")
        assert isinstance(stmt, ast.TryCatch)
        assert stmt.exc_name == "e"

    def test_nested_blocks(self):
        (stmt,) = parse_stmts("{ { x = 1; } }")
        assert isinstance(stmt, ast.Block)

    def test_missing_semicolon_is_error(self):
        with pytest.raises(ParseError):
            parse_stmts("x = 1")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert isinstance(expr.right, ast.Binary) and expr.right.op == "*"

    def test_precedence_comparison_over_and(self):
        expr = parse_expression("a < b && c > d")
        assert expr.op == "&&"
        assert expr.left.op == "<"

    def test_or_lower_than_and(self):
        expr = parse_expression("a || b && c")
        assert expr.op == "||"
        assert expr.right.op == "&&"

    def test_left_associativity(self):
        expr = parse_expression("a - b - c")
        assert expr.op == "-"
        assert isinstance(expr.left, ast.Binary)
        assert expr.left.op == "-"

    def test_parentheses_override(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_not_and_minus(self):
        expr = parse_expression("!-x")
        assert isinstance(expr, ast.Unary) and expr.op == "!"
        assert isinstance(expr.operand, ast.Unary) and expr.operand.op == "-"

    def test_cast(self):
        expr = parse_expression("(String) x")
        assert isinstance(expr, ast.Cast)
        assert expr.target_type == ClassType("String")

    def test_cast_to_array(self):
        expr = parse_expression("(Foo[]) x")
        assert isinstance(expr, ast.Cast)
        assert expr.target_type == ArrayType(ClassType("Foo"))

    def test_parenthesized_var_minus_is_not_cast(self):
        expr = parse_expression("(a) - b")
        assert isinstance(expr, ast.Binary) and expr.op == "-"

    def test_cast_of_call(self):
        expr = parse_expression("(Foo) list.get(0)")
        assert isinstance(expr, ast.Cast)
        assert isinstance(expr.expr, ast.Call)

    def test_instanceof(self):
        expr = parse_expression("x instanceof Foo")
        assert isinstance(expr, ast.InstanceOf)
        assert expr.class_name == "Foo"

    def test_method_call_chain(self):
        expr = parse_expression("a.b().c(1, 2)")
        assert isinstance(expr, ast.Call) and expr.name == "c"
        assert isinstance(expr.receiver, ast.Call)

    def test_field_chain(self):
        expr = parse_expression("a.b.c")
        assert isinstance(expr, ast.FieldAccess) and expr.name == "c"
        assert isinstance(expr.target, ast.FieldAccess)

    def test_array_index_expression(self):
        expr = parse_expression("a[i + 1]")
        assert isinstance(expr, ast.ArrayAccess)
        assert isinstance(expr.index, ast.Binary)

    def test_new_object(self):
        expr = parse_expression("new Foo(1, x)")
        assert isinstance(expr, ast.New)
        assert len(expr.args) == 2

    def test_new_array(self):
        expr = parse_expression("new int[10]")
        assert isinstance(expr, ast.NewArray)
        assert expr.element_type == INT

    def test_new_array_of_objects(self):
        expr = parse_expression("new Foo[n]")
        assert isinstance(expr, ast.NewArray)
        assert expr.element_type == ClassType("Foo")

    def test_postfix_increment(self):
        expr = parse_expression("x++")
        assert isinstance(expr, ast.PostfixIncDec) and expr.op == "+"

    def test_postfix_on_array_element(self):
        expr = parse_expression("a[i]++")
        assert isinstance(expr, ast.PostfixIncDec)
        assert isinstance(expr.target, ast.ArrayAccess)

    def test_postfix_requires_lvalue(self):
        with pytest.raises(ParseError):
            parse_expression("(a + b)++")

    def test_this_and_null_and_booleans(self):
        assert isinstance(parse_expression("this"), ast.This)
        assert isinstance(parse_expression("null"), ast.NullLit)
        assert parse_expression("true").value is True
        assert parse_expression("false").value is False

    def test_char_literal_is_string(self):
        expr = parse_expression("'x'")
        assert isinstance(expr, ast.StringLit)
        assert expr.value == "x"

    def test_unexpected_token(self):
        with pytest.raises(ParseError):
            parse_expression("+")

    def test_positions_recorded(self):
        program = parse_program("class C {\n  int f;\n}")
        assert program.classes[0].fields[0].position.line == 2
