"""Soundness sweep: dynamic dependences must be covered statically.

Every dependence the tracing interpreter *observes* corresponds to a
may-dependence the static analysis must predict.  Concretely: the
dynamic thin slice of an output value (a chain of events that actually
happened) must be contained, line-wise, in the static thin slice seeded
at the same print statement.  Running this over every suite program and
test input is an end-to-end soundness check of points-to + SDG + slicer
against the executable semantics.
"""

from __future__ import annotations

import pytest

from repro.analysis.pointsto import solve_points_to
from repro.dynamic import dynamic_thin_slice, dynamic_traditional_slice, trace_program
from repro.frontend import compile_source
from repro.sdg.sdg import build_sdg
from repro.slicing.thin import ThinSlicer
from repro.slicing.traditional import TraditionalSlicer
from repro.suite.loader import load_source

CASES = [
    ("figure1", ["John Doe", "Jane Roe"]),
    ("figure5", []),
    ("jtopas", ['foo 12 "x y" + z9']),
    ("minixml", ["<a id='42'><b>hi</b><c x='1'></c></a>"]),
    ("xmlsec", ["Hello XML  Security", "7301"]),
    ("rules", []),
    ("minijavac", ["x = 1 + 2 * 3; y = x - (4 / 2); y * -2"]),
    ("parsegen", ["S -> a B | c ; B -> b | _"]),
    ("raytrace", []),
    ("minibuild", ["prop n world; target a = echo ${n}; target all : a = jar x"]),
]


def _setup(name: str, args: list[str]):
    source = load_source(name)
    compiled = compile_source(source, f"{name}.mj", include_stdlib=True)
    pts = solve_points_to(compiled.ir)
    sdg = build_sdg(compiled, pts)
    trace = trace_program(compiled.ast, compiled.table, args)
    assert not trace.failed, trace.error
    return compiled, sdg, trace


@pytest.mark.parametrize("name,args", CASES, ids=[c[0] for c in CASES])
def test_dynamic_thin_contained_in_static_thin(name, args):
    compiled, sdg, trace = _setup(name, args)
    static = ThinSlicer(compiled, sdg)
    static_cache: dict[int, set[int]] = {}
    # Check a sample of output events spread over the run.
    sample = trace.output_events[:: max(1, len(trace.output_events) // 5)]
    for event in sample:
        seed_line = event.line
        if seed_line not in static_cache:
            static_cache[seed_line] = static.slice_from_line(seed_line).lines
        dynamic = dynamic_thin_slice([event])
        missing = dynamic.lines - static_cache[seed_line] - {seed_line, 0}
        assert not missing, (
            f"{name}: dynamic producer lines {sorted(missing)} missing from "
            f"the static thin slice of line {seed_line}"
        )


@pytest.mark.parametrize("name,args", CASES[:4], ids=[c[0] for c in CASES[:4]])
def test_dynamic_traditional_contained_in_static_traditional(name, args):
    compiled, sdg, trace = _setup(name, args)
    static = TraditionalSlicer(compiled, sdg)
    event = trace.output_events[-1]
    static_lines = static.slice_from_line(event.line).lines
    dynamic = dynamic_traditional_slice([event])
    # Implicit default initialization ('default' events on declaration
    # lines) has no statement counterpart in the static SDG — a known
    # modeling difference, not an unsoundness (the value is a constant).
    observed = {
        e.line for e in dynamic.events if e.line > 0 and e.kind != "default"
    }
    missing = observed - static_lines - {event.line}
    assert not missing, sorted(missing)
