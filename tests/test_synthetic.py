"""Synthetic program generator tests."""

from __future__ import annotations

import pytest

from repro.analysis.pointsto import solve_points_to
from repro.frontend import compile_source
from repro.interp.interpreter import run_program
from repro.lang.source import marker_line
from repro.sdg.sdg import build_sdg
from repro.slicing.thin import ThinSlicer
from repro.suite.synthetic import expected_sizes, generate_layered_program


class TestGenerator:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            generate_layered_program(0, 3)
        with pytest.raises(ValueError):
            generate_layered_program(3, 0)

    @pytest.mark.parametrize("layers,width", [(1, 1), (2, 3), (4, 2)])
    def test_generated_program_typechecks_and_runs(self, layers, width):
        source = generate_layered_program(layers, width)
        compiled = compile_source(source, "syn.mj", include_stdlib=True)
        result = run_program(compiled.ast, compiled.table, [])
        assert not result.failed, result.error
        assert len(result.output) == 3
        assert result.output[2].startswith("steps: ")

    def test_class_count_matches_expectation(self):
        layers, width = 3, 4
        source = generate_layered_program(layers, width)
        compiled = compile_source(source, "syn.mj", include_stdlib=True)
        classes, _ = expected_sizes(layers, width)
        user_classes = [
            c for c in compiled.table.classes
            if c.startswith("W") or c == "Main"
        ]
        assert len(user_classes) == classes

    def test_result_is_deterministic_function_of_size(self):
        source = generate_layered_program(2, 2)
        compiled = compile_source(source, "syn.mj", include_stdlib=True)
        first = run_program(compiled.ast, compiled.table, [])
        second = run_program(compiled.ast, compiled.table, [])
        assert first.output == second.output

    def test_sink_slice_spans_every_layer(self):
        layers, width = 3, 2
        source = generate_layered_program(layers, width)
        compiled = compile_source(source, "syn.mj", include_stdlib=True)
        pts = solve_points_to(compiled.ir)
        sdg = build_sdg(compiled, pts)
        sink = marker_line(compiled.source.text, "tag", "sink")
        result = ThinSlicer(compiled, sdg).slice_from_line(sink)
        text = compiled.source.text.splitlines()
        sliced = "\n".join(text[line - 1] for line in result.lines)
        for layer in range(layers):
            assert f"W{layer}_0" in sliced  # every tier contributes

    def test_container_sink_reaches_log_adds(self):
        source = generate_layered_program(2, 2)
        compiled = compile_source(source, "syn.mj", include_stdlib=True)
        pts = solve_points_to(compiled.ir)
        sdg = build_sdg(compiled, pts)
        sink = marker_line(compiled.source.text, "tag", "containersink")
        result = ThinSlicer(compiled, sdg).slice_from_line(sink)
        text = compiled.source.text.splitlines()
        sliced = "\n".join(text[line - 1] for line in result.lines)
        assert "log.add" in sliced


class TestDynamicSliceViews:
    def test_source_view_and_kind_counts(self):
        from repro.dynamic import trace_and_slice

        source = generate_layered_program(2, 2)
        run = trace_and_slice(source, [], "syn.mj", seed_output_index=0)
        view = run.thin.source_view(source)
        assert view
        assert all(line.startswith("*") for line in view.splitlines())
        counts = run.thin.event_counts_by_kind()
        assert counts.get("binop", 0) > 0
        assert sum(counts.values()) == len(run.thin)
