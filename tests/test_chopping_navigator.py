"""Chopping and dependence-navigator tests."""

from __future__ import annotations

from repro.lang.source import find_markers
from repro.sdg.nodes import EdgeKind, TRADITIONAL_KINDS
from repro.slicing.chopping import Chopper, thin_chop, traditional_chop
from repro.tooling.navigator import Navigator


def tags(source: str) -> dict[str, int]:
    return find_markers(source)["tag"]


class TestChopping:
    def test_thin_chop_is_the_value_corridor(self, figure1):
        source, compiled, pts, sdg = figure1
        t = tags(source)
        chop = thin_chop(compiled, sdg, t["buggy"], t["seed"])
        # The corridor: buggy substring -> add -> (vector internals) ->
        # get -> seed.
        assert t["buggy"] in chop.lines
        assert t["seed"] in chop.lines
        assert t["add"] in chop.lines
        # Unrelated producers (the indexOf computing spaceInd) are in the
        # backward slice but not on the source->sink corridor.
        assert t["indexOf"] not in chop.lines

    def test_chop_empty_when_no_flow(self, figure1):
        source, compiled, pts, sdg = figure1
        t = tags(source)
        chop = thin_chop(compiled, sdg, t["seed"], t["buggy"])  # reversed
        assert chop.empty

    def test_thin_chop_subset_of_traditional_chop(self, figure1):
        source, compiled, pts, sdg = figure1
        t = tags(source)
        thin = thin_chop(compiled, sdg, t["buggy"], t["seed"])
        trad = traditional_chop(compiled, sdg, t["buggy"], t["seed"])
        assert thin.nodes <= trad.nodes

    def test_chop_subset_of_both_slices(self, figure2):
        source, compiled, pts, sdg = figure2
        t = tags(source)
        chopper = Chopper(compiled, sdg)
        chop = chopper.chop(t["allocB"], t["seed"])
        from repro.slicing.thin import ThinSlicer

        backward = ThinSlicer(compiled, sdg).slice_from_line(t["seed"])
        assert chop.nodes <= set(backward.traversal.order)
        assert t["store"] in chop.lines

    def test_chop_of_line_with_itself(self, figure2):
        source, compiled, pts, sdg = figure2
        t = tags(source)
        chop = Chopper(compiled, sdg).chop(t["seed"], t["seed"])
        assert t["seed"] in chop.lines


class TestNavigator:
    def test_producers_one_hop(self, figure2):
        source, compiled, pts, sdg = figure2
        t = tags(source)
        nav = Navigator(compiled, sdg)
        producer_lines = {s.line for s in nav.producers_of(t["seed"])}
        assert t["store"] in producer_lines  # heap edge: one hop
        assert t["allocB"] not in producer_lines  # two hops away

    def test_explainers_one_hop(self, figure2):
        source, compiled, pts, sdg = figure2
        t = tags(source)
        nav = Navigator(compiled, sdg)
        steps = {s.line: s.kinds for s in nav.explainers_of(t["seed"])}
        assert t["copyz"] in steps  # base pointer of z.f
        assert EdgeKind.BASE in steps[t["copyz"]]
        assert t["cond"] in steps  # governing conditional
        assert EdgeKind.CONTROL in steps[t["cond"]]

    def test_consumers_one_hop(self, figure2):
        source, compiled, pts, sdg = figure2
        t = tags(source)
        nav = Navigator(compiled, sdg)
        consumer_lines = {s.line for s in nav.consumers_of(t["allocB"])}
        assert t["store"] in consumer_lines

    def test_why_finds_value_path(self, figure1):
        source, compiled, pts, sdg = figure1
        t = tags(source)
        nav = Navigator(compiled, sdg)
        path = nav.why(t["buggy"], t["seed"])
        assert path is not None
        lines = [s.line for s in path]
        assert lines[0] == t["buggy"]
        assert lines[-1] == t["seed"]
        # The path threads through the container internals.
        text = nav.render_path(path)
        assert "elems" in text

    def test_why_none_when_unreachable(self, figure2):
        source, compiled, pts, sdg = figure2
        t = tags(source)
        nav = Navigator(compiled, sdg)
        # allocA never produces the seed's value through producer flow.
        assert nav.why(t["allocA"], t["seed"]) is None

    def test_why_with_traditional_kinds_reaches_more(self, figure2):
        source, compiled, pts, sdg = figure2
        t = tags(source)
        nav = Navigator(compiled, sdg)
        path = nav.why(t["allocA"], t["seed"], TRADITIONAL_KINDS)
        assert path is not None

    def test_steps_carry_source_text(self, figure2):
        source, compiled, pts, sdg = figure2
        t = tags(source)
        nav = Navigator(compiled, sdg)
        (step,) = [s for s in nav.producers_of(t["seed"]) if s.line == t["store"]]
        assert "w.f = y" in step.text
