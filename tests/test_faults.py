"""Chaos drills: the daemon must survive every injected fault.

Each test arms one dial on a :class:`repro.server.faults.FaultPlan`,
drives the real daemon through the failure, and asserts (a) the failure
surfaces as a structured error — never a crash or a hang — and (b) the
daemon keeps answering afterwards with correct counters.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro import AnalyzeOptions, Budget, BudgetExceeded, analyze
from repro.lang.source import marker_line
from repro.server.cache import AnalysisCache
from repro.server.client import ServerError, SliceClient
from repro.server.daemon import SliceServer, start_tcp_server
from repro.server.faults import FaultPlan, InjectedFault
from repro.server.store import DiskStore
from repro.suite.loader import load_source
from tests.conftest import make_server

SOURCE = load_source("figure2")
SEED_LINE = marker_line(SOURCE, "tag", "seed")


def rpc(server: SliceServer, method: str, request_id=1, **params):
    line = json.dumps({"id": request_id, "method": method, "params": params})
    return json.loads(server.handle_line(line))


def wait_until(predicate, timeout_s: float, interval_s: float = 0.02) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


@pytest.fixture
def faulty():
    """A daemon with an armed (but initially inert) fault plan."""
    plan = FaultPlan()
    server = make_server(
        AnalysisCache(), workers=2, max_queue=4, fault_plan=plan
    )
    yield server, plan
    server.close()


class TestBudget:
    def test_expired_budget_aborts_analysis(self):
        budget = Budget.from_timeout(0.0)
        options = AnalyzeOptions(budget=budget)
        with pytest.raises(BudgetExceeded):
            analyze(SOURCE, "figure2.mj", options=options)

    def test_cancelled_budget_aborts_analysis(self):
        budget = Budget()
        budget.cancel("test says stop")
        with pytest.raises(BudgetExceeded) as err:
            analyze(SOURCE, "figure2.mj", options=AnalyzeOptions(budget=budget))
        assert "test says stop" in str(err.value)

    def test_artifact_never_retains_budget(self):
        budget = Budget.from_timeout(60.0)
        analyzed = analyze(
            SOURCE, "figure2.mj", options=AnalyzeOptions(budget=budget)
        )
        assert analyzed.options.budget is None

    def test_step_budget(self):
        budget = Budget(max_steps=10)
        with pytest.raises(BudgetExceeded) as err:
            for _ in range(1000):
                budget.poll()
        assert err.value.reason == "steps"

    def test_budget_excluded_from_cache_key(self):
        from repro.server.cache import cache_key

        plain = AnalyzeOptions()
        budgeted = AnalyzeOptions(budget=Budget.from_timeout(1.0))
        assert cache_key(SOURCE, plain) == cache_key(SOURCE, budgeted)


class TestWorkerFaults:
    def test_injected_worker_error_is_isolated(self, faulty):
        server, plan = faulty
        plan.worker_errors = 1
        response = rpc(server, "slice", program="figure2", line=SEED_LINE)
        assert response["ok"] is False
        assert response["error"]["type"] == "InjectedFault"
        # The daemon survives and the next request succeeds.
        retry = rpc(server, "slice", program="figure2", line=SEED_LINE)
        assert retry["ok"] is True
        stats = rpc(server, "stats")["result"]
        assert stats["methods"]["slice"]["count"] == 2
        assert stats["methods"]["slice"]["errors"] == 1

    def test_deadline_frees_worker_within_a_second(self, faulty):
        server, plan = faulty
        plan.analysis_delay_s = 30.0
        start = time.monotonic()
        response = rpc(
            server, "slice", program="figure2", line=SEED_LINE, deadline=0.2
        )
        elapsed = time.monotonic() - start
        assert response["error"]["type"] == "Timeout"
        assert elapsed < 2.0
        # The cancelled worker must observe its budget and free itself
        # well within a second — watched through the health RPC, which
        # never touches the pool.
        assert wait_until(
            lambda: rpc(server, "health")["result"]["busy"] == 0, 1.0
        )
        health = rpc(server, "health")["result"]
        assert health["cancelled_total"] >= 1
        # Recovery: with the delay disarmed the same query succeeds.
        plan.analysis_delay_s = 0.0
        assert rpc(server, "slice", program="figure2", line=SEED_LINE)["ok"]

    def test_cancelled_analysis_leaves_no_cache_entry(self, tmp_path):
        plan = FaultPlan(analysis_delay_s=30.0)
        store = DiskStore(tmp_path / "store")
        cache = AnalysisCache(store=store, fault_plan=plan)
        server = make_server(cache, fault_plan=plan)
        try:
            response = rpc(
                server, "slice", program="figure2", line=SEED_LINE, deadline=0.2
            )
            assert response["error"]["type"] == "Timeout"
            assert wait_until(
                lambda: rpc(server, "health")["result"]["busy"] == 0, 1.0
            )
            assert len(cache) == 0
            assert cache.misses == 0
            assert store.stats.saves == 0
            assert not list((tmp_path / "store").glob("*/*.art"))
        finally:
            server.close()

    def test_cancelled_then_retried_is_byte_identical(self, faulty):
        """Differential safety: a cancelled request, retried, must
        produce exactly the payload an undisturbed server produces."""
        server, plan = faulty
        plan.analysis_delay_s = 30.0
        cancelled = rpc(
            server, "slice", program="figure2", line=SEED_LINE, deadline=0.2
        )
        assert cancelled["error"]["type"] == "Timeout"
        assert wait_until(
            lambda: rpc(server, "health")["result"]["busy"] == 0, 1.0
        )
        plan.analysis_delay_s = 0.0
        retried = rpc(server, "slice", program="figure2", line=SEED_LINE)
        assert retried["ok"]

        fresh = make_server(AnalysisCache())
        try:
            undisturbed = rpc(
                fresh, "slice", program="figure2", line=SEED_LINE
            )
        finally:
            fresh.close()
        assert json.dumps(retried["result"], sort_keys=True) == json.dumps(
            undisturbed["result"], sort_keys=True
        )


class TestProcessExecutor:
    """Drills that only make sense when analyses run in worker
    *processes*: the failure is a dead process, not an exception, and
    recovery means the pool respawned a replacement.  These always use
    ``executor="process"`` explicitly — they are meaningless in thread
    mode — while the rest of the file follows the suite-wide knob."""

    @pytest.fixture
    def process_server(self, tmp_path):
        plan = FaultPlan()
        store = DiskStore(tmp_path / "store")
        cache = AnalysisCache(store=store)
        server = SliceServer(
            cache, workers=2, executor="process", fault_plan=plan
        )
        # Pay spawn costs up front so the drills' timing assertions
        # measure fault handling, not worker start-up.
        server.process_pool.prestart(wait=True)
        yield server, plan, cache, store
        server.close()

    def test_worker_crash_respawns_and_retry_succeeds(self, process_server):
        server, plan, cache, store = process_server
        spawned_before = server.process_pool.stats()["spawned_total"]
        plan.worker_process_crashes = 1

        response = rpc(server, "slice", program="figure2", line=SEED_LINE)
        assert response["ok"] is False
        assert response["error"]["type"] == "WorkerCrashed"

        # The crash must leave no trace in either cache tier.
        assert len(cache) == 0
        assert cache.misses == 0
        assert store.stats.saves == 0
        assert not list(store.root.glob("*/*.art"))

        # The pool replaces the dead worker in the background.
        assert wait_until(
            lambda: rpc(server, "health")["result"]["pool"]["spawned_total"]
            > spawned_before,
            5.0,
        )

        # A retry recomputes and must be byte-identical to what an
        # undisturbed (thread-mode) server answers.
        retried = rpc(server, "slice", program="figure2", line=SEED_LINE)
        assert retried["ok"] is True
        fresh = SliceServer(AnalysisCache())
        try:
            undisturbed = rpc(fresh, "slice", program="figure2", line=SEED_LINE)
        finally:
            fresh.close()
        assert json.dumps(retried["result"], sort_keys=True) == json.dumps(
            undisturbed["result"], sort_keys=True
        )
        assert store.stats.saves == 1  # the retry's serialize-once write

    def test_deadline_kills_worker_and_frees_slot(self, process_server):
        server, plan, cache, store = process_server
        # A *non-cooperative* stall: the worker cannot poll any budget,
        # so only the parent-side kill can end it.
        plan.worker_process_delay_s = 30.0

        start = time.monotonic()
        response = rpc(
            server, "slice", program="figure2", line=SEED_LINE, deadline=0.2
        )
        elapsed = time.monotonic() - start
        assert response["error"]["type"] == "Timeout"
        assert elapsed < 2.0

        # The slot must free within a second of the kill, observed via
        # the health RPC (which never touches the pool).
        assert wait_until(
            lambda: rpc(server, "health")["result"]["busy"] == 0, 1.0
        )
        health = rpc(server, "health")["result"]
        assert health["cancelled_total"] >= 1
        assert health["pool"]["kills"] >= 1

        # No partial artifact escaped the killed worker.
        assert len(cache) == 0
        assert store.stats.saves == 0

        # Disarmed, the same query succeeds on the respawned worker.
        plan.worker_process_delay_s = 0.0
        assert rpc(server, "slice", program="figure2", line=SEED_LINE)["ok"]


class TestTornWrites:
    def test_torn_artifact_is_quarantined_and_recomputed(self, tmp_path):
        plan = FaultPlan(torn_writes=1)
        store = DiskStore(tmp_path / "store", fault_plan=plan)
        first = AnalysisCache(store=store)
        analyzed, origin = first.get_or_analyze(SOURCE, "figure2.mj")
        assert origin == "analyzed"
        assert store.stats.saves == 1  # the torn one

        # A fresh process: the torn artifact must be quarantined, never
        # unpickled into a bad object, and the analysis recomputed.
        second = AnalysisCache(store=DiskStore(tmp_path / "store"))
        recomputed, origin = second.get_or_analyze(SOURCE, "figure2.mj")
        assert origin == "analyzed"
        assert second.store.stats.quarantined == 1
        assert any(second.store.corrupt_dir.glob("*.art"))
        assert second.store.stats.saves == 1  # the clean rewrite

        # Third process: the clean artifact loads from disk.
        third = AnalysisCache(store=DiskStore(tmp_path / "store"))
        loaded, origin = third.get_or_analyze(SOURCE, "figure2.mj")
        assert origin == "disk"
        assert loaded.sdg.edge_count() == analyzed.sdg.edge_count()


class TestOverload:
    def test_saturated_pool_sheds_fast_and_recovers(self):
        plan = FaultPlan(analysis_delay_s=30.0)
        server = make_server(
            AnalysisCache(), workers=1, max_queue=0, fault_plan=plan
        )
        try:
            hog = threading.Thread(
                target=rpc,
                args=(server, "slice"),
                kwargs={"program": "figure2", "line": SEED_LINE, "deadline": 0.6},
                daemon=True,
            )
            hog.start()
            assert wait_until(
                lambda: rpc(server, "health")["result"]["busy"] == 1, 1.0
            )
            start = time.monotonic()
            shed = rpc(
                server, "slice", source=SOURCE + "// shed", line=SEED_LINE
            )
            elapsed = time.monotonic() - start
            assert shed["error"]["type"] == "Overloaded"
            assert elapsed < 0.5  # rejected without queueing behind the hog
            assert rpc(server, "health")["result"]["shed_total"] == 1
            # Introspection stays responsive under full saturation.
            assert rpc(server, "ping")["ok"]
            hog.join(timeout=5)
            assert wait_until(
                lambda: rpc(server, "health")["result"]["busy"] == 0, 1.0
            )
            plan.analysis_delay_s = 0.0
            assert rpc(server, "slice", program="figure2", line=SEED_LINE)["ok"]
        finally:
            server.close()


class TestConnectionFaults:
    def test_client_disconnect_cancels_inflight_work(self):
        plan = FaultPlan(analysis_delay_s=30.0)
        server = make_server(AnalysisCache(), workers=2, fault_plan=plan)
        tcp_server, _thread = start_tcp_server(server)
        host, port = tcp_server.server_address[:2]
        try:
            sock = socket.create_connection((host, port), timeout=5)
            request = json.dumps(
                {
                    "id": 1,
                    "method": "slice",
                    "params": {"program": "figure2", "line": SEED_LINE},
                }
            )
            sock.sendall((request + "\n").encode("utf-8"))
            time.sleep(0.2)  # let the worker pick it up
            sock.close()  # client walks away mid-request
            with SliceClient.connect(host, port) as watcher:
                assert wait_until(
                    lambda: watcher.health()["busy"] == 0, 2.0
                )
                assert watcher.health()["cancelled_total"] >= 1
                plan.analysis_delay_s = 0.0
                assert watcher.slice_program("figure2", SEED_LINE)["line_count"]
        finally:
            tcp_server.shutdown()
            tcp_server.server_close()
            server.close()

    def test_dropped_connection_is_retried_transparently(self):
        plan = FaultPlan(connection_drops=1)
        server = make_server(AnalysisCache(), fault_plan=plan)
        tcp_server, _thread = start_tcp_server(server)
        host, port = tcp_server.server_address[:2]
        try:
            with SliceClient.connect(host, port, retries=2) as client:
                # The first response is dropped on the floor; the client
                # reconnects and re-asks, and the caller never notices.
                result = client.slice_program("figure2", SEED_LINE)
                assert result["line_count"] > 0
                assert plan.connection_drops == 0  # the fault did fire
        finally:
            tcp_server.shutdown()
            tcp_server.server_close()
            server.close()

    def test_no_retry_without_budget(self):
        plan = FaultPlan(connection_drops=1)
        server = make_server(AnalysisCache(), fault_plan=plan)
        tcp_server, _thread = start_tcp_server(server)
        host, port = tcp_server.server_address[:2]
        try:
            with SliceClient.connect(host, port, retries=0) as client:
                with pytest.raises(ServerError) as err:
                    client.slice_program("figure2", SEED_LINE)
                assert err.value.error_type == "Disconnected"
        finally:
            tcp_server.shutdown()
            tcp_server.server_close()
            server.close()


class TestFaultPlanUnit:
    def test_counters_are_one_shot(self):
        plan = FaultPlan(worker_errors=2)
        with pytest.raises(InjectedFault):
            plan.on_worker()
        with pytest.raises(InjectedFault):
            plan.on_worker()
        plan.on_worker()  # exhausted: no-op

    def test_default_plan_is_inert(self):
        plan = FaultPlan()
        plan.on_worker()
        plan.on_analysis()
        assert plan.torn_write() is False
        assert plan.drop_connection() is False

    def test_slow_analysis_respects_cancellation(self):
        plan = FaultPlan(analysis_delay_s=30.0)
        budget = Budget.from_timeout(0.05)
        start = time.monotonic()
        with pytest.raises(BudgetExceeded):
            plan.on_analysis(budget)
        assert time.monotonic() - start < 1.0
