"""Scalability experiments (§6.1 prose claims).

The paper's scalability story has four parts, each regenerated here:

1. Context-insensitive slicing is cheap relative to the prerequisite
   pointer analysis (theirs: slices in seconds, points-to in minutes).
2. The heap-parameter SDG (needed for context-sensitive slicing)
   explodes relative to the direct-edge SDG (theirs: >10M nodes,
   memory exhaustion on large benchmarks).
3. The context-sensitive traditional slicer's summary computation grows
   far faster than flat reachability (their implementation "could not
   complete in reasonable time and/or space" on the larger codes).
4. Context sensitivity shrinks *full slice sizes* far more than it
   shrinks the *BFS-inspected* counts (their nanoxml-1: 8067->381
   statements but only 32->26 inspected), so CI thin slicing is the
   practical configuration.
"""

from __future__ import annotations

import time

from _util import emit, format_table
from repro.analysis.modref import compute_modref
from repro.analysis.pointsto import solve_points_to
from repro.frontend import compile_source
from repro.sdg.sdg import SDGBudgetExceeded, build_sdg
from repro.slicing.tabulation import (
    TabulationBudgetExceeded,
    TabulationSlicer,
    TRADITIONAL_SAME_LEVEL,
)
from repro.suite.bugs import BUGS, resolve_task
from repro.suite.harness import SUITE_PROGRAMS, analyze_program
from repro.suite.loader import load_source

def test_ci_slicing_cost_vs_pointer_analysis(benchmark, results_dir):
    """CI thin slicing must be cheap relative to points-to + SDG."""

    def build():
        rows = []
        for program in SUITE_PROGRAMS:
            source = load_source(program)
            t0 = time.perf_counter()
            compiled = compile_source(source, program, include_stdlib=True)
            t_compile = time.perf_counter() - t0

            t0 = time.perf_counter()
            pts = solve_points_to(compiled.ir)
            t_pts = time.perf_counter() - t0

            t0 = time.perf_counter()
            sdg = build_sdg(compiled, pts, heap_mode="direct")
            t_sdg = time.perf_counter() - t0

            from repro.slicing.thin import ThinSlicer

            slicer = ThinSlicer(compiled, sdg)
            lines = [
                i.position.line
                for i in compiled.ir.all_instructions()
                if i.position.line > 0
            ]
            sample = sorted(set(lines))[::5][:40]
            t0 = time.perf_counter()
            for line in sample:
                slicer.slice_from_line(line)
            t_slice = (time.perf_counter() - t0) / max(len(sample), 1)
            rows.append(
                [
                    program,
                    f"{t_compile * 1000:.0f}",
                    f"{t_pts * 1000:.0f}",
                    f"{t_sdg * 1000:.0f}",
                    f"{t_slice * 1000:.2f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    text = format_table(
        ["program", "compile ms", "points-to ms", "SDG ms", "per-slice ms"],
        rows,
    )
    emit(
        results_dir,
        "scalability_ci.txt",
        "Scalability: CI thin slicing vs prerequisite analyses\n" + text,
    )
    # The headline claim: a single slice is far cheaper than points-to.
    for row in rows:
        assert float(row[4]) < float(row[2]), row[0]


def test_heap_parameter_sdg_blowup(benchmark, results_dir):
    """The §5.3 SDG must be considerably larger than the §5.2 SDG."""

    def build():
        rows = []
        for program in SUITE_PROGRAMS:
            bundle = analyze_program(program)
            direct_nodes = bundle.sdg.node_count()
            modref = compute_modref(bundle.compiled.ir, bundle.pts)
            try:
                params_sdg = build_sdg(
                    bundle.compiled,
                    bundle.pts,
                    heap_mode="params",
                    modref=modref,
                    node_budget=2_000_000,
                )
                params_nodes = params_sdg.node_count()
                note = f"{params_nodes / direct_nodes:.1f}x"
            except SDGBudgetExceeded as exceeded:
                params_nodes = exceeded.nodes_so_far
                note = "budget exceeded"
            rows.append([program, direct_nodes, params_nodes, note])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    text = format_table(
        ["program", "direct SDG nodes", "heap-param SDG nodes", "growth"], rows
    )
    emit(
        results_dir,
        "scalability_sdg.txt",
        "Scalability: heap-parameter SDG blow-up (the paper's >10M-node "
        "wall)\n" + text,
    )
    for row in rows:
        assert row[2] > row[1], row[0]  # params mode always larger


def test_cs_summary_computation_growth(benchmark, results_dir):
    """Summary-edge computation (tabulation) cost per program, with a
    budget standing in for the paper's time/memory exhaustion."""

    budget = 400_000

    def build():
        rows = []
        for program in SUITE_PROGRAMS:
            bundle = analyze_program(program)
            modref = compute_modref(bundle.compiled.ir, bundle.pts)
            try:
                sdg = build_sdg(
                    bundle.compiled,
                    bundle.pts,
                    heap_mode="params",
                    modref=modref,
                    node_budget=500_000,
                )
            except SDGBudgetExceeded:
                rows.append([program, "-", "SDG budget exceeded"])
                continue
            slicer = TabulationSlicer(
                bundle.compiled, sdg, TRADITIONAL_SAME_LEVEL, max_path_edges=budget
            )
            t0 = time.perf_counter()
            try:
                slicer.compute_summaries()
                elapsed = time.perf_counter() - t0
                rows.append(
                    [program, slicer.path_edge_count, f"{elapsed * 1000:.0f} ms"]
                )
            except TabulationBudgetExceeded as exceeded:
                rows.append(
                    [program, exceeded.path_edges, "did not finish (budget)"]
                )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    text = format_table(["program", "path edges", "outcome"], rows)
    emit(
        results_dir,
        "scalability_tabulation.txt",
        "Scalability: context-sensitive summary computation\n" + text,
    )
    assert rows


def test_cs_benefit_is_in_size_not_inspection(benchmark, results_dir):
    """Reproduce the nanoxml-1 observation: context sensitivity shrinks
    the full slice much more than the BFS-inspected count."""

    def build():
        bug = BUGS["minixml-2"]
        source = bug.apply()
        compiled = compile_source(source, "minixml-2.mj", include_stdlib=True)
        pts = solve_points_to(compiled.ir)
        task = resolve_task(bug, compiled.source.text)

        sdg_ci = build_sdg(compiled, pts, heap_mode="direct")
        from repro.slicing.traditional import TraditionalSlicer

        ci = TraditionalSlicer(compiled, sdg_ci)
        ci_slice = ci.slice_from_line(task.seed)
        ci_full = len(ci_slice.lines)
        from repro.slicing.inspection import count_inspected

        ci_inspect = count_inspected(ci, task.seed, set(task.desired)).inspected

        modref = compute_modref(compiled.ir, pts)
        sdg_cs = build_sdg(compiled, pts, heap_mode="params", modref=modref)
        cs = TabulationSlicer(compiled, sdg_cs, TRADITIONAL_SAME_LEVEL)
        cs_slice = cs.slice_from_line(task.seed)
        # Count *statement* lines only, matching the CI metric (the
        # heap-parameter nodes of this SDG mode all land on call lines
        # and would otherwise be charged to the CS configuration).
        from repro.sdg.nodes import is_statement, node_position

        seen: set[int] = set()
        remaining = set(task.desired)
        cs_inspect = 0
        for node in cs_slice.traversal.order:
            if not is_statement(node):
                continue
            line = node_position(node).line
            if line <= 0 or line in seen:
                continue
            seen.add(line)
            remaining.discard(line)
            if not remaining and cs_inspect == 0:
                cs_inspect = len(seen)
        cs_full = len(seen)
        if remaining:
            cs_inspect = len(seen)
        return ci_full, cs_full, ci_inspect, cs_inspect

    ci_full, cs_full, ci_inspect, cs_inspect = benchmark.pedantic(
        build, rounds=1, iterations=1
    )
    text = format_table(
        ["metric", "context-insensitive", "context-sensitive"],
        [
            ["full slice (stmt lines)", ci_full, cs_full],
            ["BFS-inspected lines", ci_inspect, cs_inspect],
        ],
    )
    emit(
        results_dir,
        "scalability_cs_benefit.txt",
        "Context sensitivity: slice size vs inspection benefit "
        "(minixml-2; paper's nanoxml-1: 8067->381 statements but only "
        "32->26 inspected — CS 'does not seem beneficial ... as likely "
        "used in practice')\n" + text,
    )
    # The paper's actionable conclusion: context sensitivity does not
    # meaningfully change the *inspection* cost, so the CI configuration
    # is the practical one.  (Our instance-cloned direct SDG is already
    # precise, so even the size gap is modest here.)
    assert cs_inspect <= ci_inspect * 1.3 + 5
