"""Cold-path benchmark: full-pipeline latency and solver comparison.

Measures, for the four mid-size suite programs:

* **cold analysis** — :func:`repro.analyze` end to end (parse →
  type-check → IR → SSA → points-to → SDG), best of 7 in-process runs,
  against the pre-optimization baseline recorded below;
* **solver head-to-head** — the optimized cycle-collapsing solver vs
  the reference fixpoint on the same IR;
* **tabulation demand** — path edges for a single-seed slice under
  demand-driven summaries vs whole-program summaries.

Emits a human table (``results/pointsto_cold_path.txt``) and a
machine-readable point (``results/BENCH_pointsto.json``).

Baseline methodology: commit 013a119 (before this optimization round),
same best-of-7 in-process loop, same machine class.  Wall-clock noise
on shared runners is ±30%, so treat per-program speedups as indicative
and the cross-program median as the headline number.
"""

from __future__ import annotations

import json
import statistics
import time

from _util import emit, format_table
from repro import analyze
from repro.analysis.modref import compute_modref
from repro.analysis.pointsto import solve_points_to
from repro.analysis.pointsto_reference import solve_points_to_reference
from repro.frontend import compile_source
from repro.sdg.sdg import build_sdg
from repro.slicing.tabulation import TabulationSlicer
from repro.suite.loader import load_source

PROGRAMS = ["jtopas", "minixml", "minijavac", "parsegen"]

#: Cold-analysis latency (ms) at commit 013a119, best of 7 in-process.
PRE_PR_BASELINE_MS = {
    "jtopas": 51.4,
    "minixml": 87.9,
    "minijavac": 88.7,
    "parsegen": 116.9,
}

RUNS = 7


def _best_of(thunk, runs: int = RUNS) -> float:
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        thunk()
        best = min(best, (time.perf_counter() - start) * 1000)
    return best


def _demand_path_edges(compiled, pts) -> tuple[int, int]:
    """(demand, full) path-edge counts for the busiest sampled seed."""
    modref = compute_modref(compiled.ir, pts)
    sdg = build_sdg(compiled, pts, heap_mode="params", modref=modref)
    lines = sorted(
        {
            instr.position.line
            for instr in compiled.ir.all_instructions()
            if instr.position.line
        }
    )
    best_line, best_edges = None, 0
    for line in lines[:: max(1, len(lines) // 20)]:
        probe = TabulationSlicer(compiled, sdg)
        probe.slice_from_line(line)
        if probe.path_edge_count > best_edges:
            best_line, best_edges = line, probe.path_edge_count
    full = TabulationSlicer(compiled, sdg)
    full.compute_summaries()
    if best_line is not None:
        full.slice_from_line(best_line)
    return best_edges, full.path_edge_count


def test_cold_path_benchmark(results_dir):
    rows = []
    points = {}
    speedups = []
    for name in PROGRAMS:
        source = load_source(name)
        cold_ms = _best_of(lambda: analyze(source, name))

        compiled = compile_source(source, name, include_stdlib=True)
        fast_ms = _best_of(lambda: solve_points_to(compiled.ir), runs=3)
        slow_ms = _best_of(
            lambda: solve_points_to_reference(compiled.ir), runs=3
        )

        pts = solve_points_to(compiled.ir)
        demand_edges, full_edges = _demand_path_edges(compiled, pts)

        baseline = PRE_PR_BASELINE_MS[name]
        speedup = baseline / cold_ms
        speedups.append(speedup)
        points[name] = {
            "cold_ms": round(cold_ms, 1),
            "baseline_ms": baseline,
            "speedup": round(speedup, 2),
            "solver_ms": round(fast_ms, 1),
            "solver_reference_ms": round(slow_ms, 1),
            "solver_speedup": round(slow_ms / fast_ms, 2),
            "path_edges_demand": demand_edges,
            "path_edges_full": full_edges,
        }
        rows.append(
            [
                name,
                f"{baseline:.1f}",
                f"{cold_ms:.1f}",
                f"{speedup:.2f}x",
                f"{fast_ms:.1f}",
                f"{slow_ms:.1f}",
                demand_edges,
                full_edges,
            ]
        )

    median_speedup = statistics.median(speedups)
    table = format_table(
        [
            "program",
            "baseline ms",
            "cold ms",
            "speedup",
            "solver ms",
            "ref solver ms",
            "PE demand",
            "PE full",
        ],
        rows,
    )
    table += f"\n\nmedian cold-path speedup: {median_speedup:.2f}x"
    emit(results_dir, "pointsto_cold_path.txt", table)

    payload = {
        "benchmark": "pointsto_cold_path",
        "baseline_commit": "013a119",
        "runs": RUNS,
        "programs": points,
        "median_speedup": round(median_speedup, 2),
    }
    (results_dir / "BENCH_pointsto.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
