"""Table 1 — benchmark characteristics.

The paper's Table 1 reports, per benchmark, class/method counts, call
graph nodes (inflated by cloning-based context sensitivity), and SDG
statement counts.  This bench regenerates the analogous table for the
suite programs and times the full analysis pipeline per program.
"""

from __future__ import annotations

import pytest

from _util import emit, format_table
from repro.suite.harness import SUITE_PROGRAMS, analyze_program, program_stats


@pytest.mark.parametrize("program", SUITE_PROGRAMS)
def test_analysis_pipeline_per_program(benchmark, program):
    """Time compile + points-to + SDG for one suite program."""
    from repro.suite.harness import _analyze_cached
    from repro.suite.loader import load_source

    source = load_source(program)

    def pipeline():
        _analyze_cached.cache_clear()
        return analyze_program(program)

    bundle = benchmark.pedantic(pipeline, rounds=3, iterations=1)
    assert bundle.sdg.statement_count() > 0


def test_table1(benchmark, results_dir):
    """Regenerate Table 1 (program characteristics, both configurations)."""

    def build():
        rows = []
        for program in SUITE_PROGRAMS:
            sens = program_stats(program, object_sensitive=True)
            insens = program_stats(program, object_sensitive=False)
            rows.append(
                [
                    program,
                    sens.classes,
                    sens.methods_reachable,
                    sens.call_graph_nodes,
                    insens.call_graph_nodes,
                    sens.sdg_statements,
                    sens.sdg_edges,
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    text = format_table(
        [
            "program",
            "classes",
            "methods",
            "CG nodes",
            "CG nodes (noobj)",
            "SDG stmts",
            "SDG edges",
        ],
        rows,
    )
    emit(results_dir, "table1.txt", "Table 1: benchmark characteristics\n" + text)

    by_name = {row[0]: row for row in rows}
    for program in SUITE_PROGRAMS:
        row = by_name[program]
        # Cloning: CG nodes with object sensitivity >= without.
        assert row[3] >= row[4], program
        assert row[5] > 0
