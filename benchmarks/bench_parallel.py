"""Multi-core executor trajectory: thread vs process cold throughput.

For each worker count the same batch of *cold* analyses (salted sources,
so every task pays the full pipeline) runs two ways:

* **thread** — N daemon-style threads calling ``repro.analyze``
  directly; the GIL serializes them, so N threads ≈ 1x;
* **process** — the same N-wide fan-out dispatching to a warmed
  :class:`repro.parallel.ProcessPool`, which is what the daemon's
  ``--executor process`` mode does on a cold cache miss.

Also measures the batched-RPC win: one ``slice_batch`` round trip for
many seeds vs the same seeds as individual ``slice`` requests.

Emits a human table (``results/parallel.txt``) and a machine-readable
trajectory point (``results/BENCH_parallel.json``).  The ≥1.8x
acceptance threshold at 4 workers is asserted only when the machine has
4+ cores (``thresholds_enforced`` records the decision); the measured
JSON is emitted either way.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor

from _util import emit, format_table
from repro import analyze
from repro.lang.source import marker_line
from repro.parallel import ProcessPool, analyze_artifact
from repro.server.cache import AnalysisCache
from repro.server.daemon import SliceServer
from repro.suite.loader import load_source

PROGRAM = "minixml"
WORKER_COUNTS = [1, 2, 4]
TASKS_PER_WORKER = 2
BATCH_SEEDS = 32


def _salted(base: str, index: int) -> str:
    return f"{base}\n// parallel-bench salt {index}\n"


def _thread_cold_s(base: str, workers: int, tasks: int) -> float:
    with ThreadPoolExecutor(max_workers=workers) as fan:
        start = time.perf_counter()
        list(
            fan.map(
                lambda i: analyze(_salted(base, i), f"salt{i}.mj"),
                range(tasks),
            )
        )
        return time.perf_counter() - start


def _process_cold_s(base: str, workers: int, tasks: int) -> float:
    with ProcessPool(workers=workers) as pool:
        pool.prestart(wait=True)
        with ThreadPoolExecutor(max_workers=workers) as fan:
            # First task per worker pays the package import — a cost a
            # long-lived daemon pays once, so it is excluded here.
            list(
                fan.map(
                    lambda i: pool.run(
                        analyze_artifact, _salted(base, 10_000 + i), "warm.mj"
                    ),
                    range(workers),
                )
            )
            start = time.perf_counter()
            list(
                fan.map(
                    lambda i: pool.run(
                        analyze_artifact, _salted(base, i), f"salt{i}.mj"
                    ),
                    range(tasks),
                )
            )
            return time.perf_counter() - start


def _rpc(server: SliceServer, method: str, **params):
    line = json.dumps({"id": 1, "method": method, "params": params})
    response = json.loads(server.handle_line(line))
    assert response["ok"], response
    return response["result"]


def _batch_vs_sequential_ms() -> dict[str, float]:
    """Warm-cache RPC cost: one slice_batch vs BATCH_SEEDS single slices."""
    source = load_source(PROGRAM)
    seed = marker_line(source, "tag", "printrender")
    seeds = [seed] * BATCH_SEEDS
    server = SliceServer(AnalysisCache())
    try:
        _rpc(server, "slice", program=PROGRAM, line=seed)  # warm the cache
        start = time.perf_counter()
        for line in seeds:
            _rpc(server, "slice", program=PROGRAM, line=line)
        sequential_ms = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        batch = _rpc(server, "slice_batch", program=PROGRAM, lines=seeds)
        batch_ms = (time.perf_counter() - start) * 1000
        assert batch["count"] == BATCH_SEEDS
        assert batch["distinct_programs"] == 1
    finally:
        server.close()
    return {
        "seeds": BATCH_SEEDS,
        "sequential_ms": round(sequential_ms, 3),
        "batch_ms": round(batch_ms, 3),
        "speedup": round(sequential_ms / batch_ms, 2),
    }


def test_parallel_trajectory(results_dir):
    cpu_count = os.cpu_count() or 1
    base = load_source(PROGRAM)

    rows = []
    by_workers = {}
    for workers in WORKER_COUNTS:
        tasks = workers * TASKS_PER_WORKER
        thread_s = _thread_cold_s(base, workers, tasks)
        process_s = _process_cold_s(base, workers, tasks)
        speedup = thread_s / process_s
        by_workers[str(workers)] = {
            "tasks": tasks,
            "thread_s": round(thread_s, 3),
            "process_s": round(process_s, 3),
            "thread_per_s": round(tasks / thread_s, 2),
            "process_per_s": round(tasks / process_s, 2),
            "speedup": round(speedup, 2),
        }
        rows.append(
            [
                str(workers),
                str(tasks),
                f"{tasks / thread_s:.1f}/s",
                f"{tasks / process_s:.1f}/s",
                f"{speedup:.2f}x",
            ]
        )

    batch = _batch_vs_sequential_ms()
    thresholds_enforced = cpu_count >= 4
    payload = {
        "benchmark": "parallel",
        "program": PROGRAM,
        "cpu_count": cpu_count,
        "thresholds_enforced": thresholds_enforced,
        "cold_throughput": by_workers,
        "slice_batch": batch,
    }
    table = format_table(
        ["workers", "tasks", "thread", "process", "speedup"], rows
    )
    table += (
        f"\nslice_batch: {batch['seeds']} seeds in {batch['batch_ms']:.1f}ms "
        f"vs {batch['sequential_ms']:.1f}ms sequential "
        f"({batch['speedup']:.2f}x)\n"
        f"cpu_count={cpu_count} thresholds_enforced={thresholds_enforced}\n"
    )
    emit(results_dir, "parallel.txt", table)
    (results_dir / "BENCH_parallel.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    if thresholds_enforced:
        # Acceptance: 4 process workers deliver ≥1.8x the cold
        # throughput of 4 GIL-bound threads.
        assert by_workers["4"]["speedup"] >= 1.8, by_workers["4"]
