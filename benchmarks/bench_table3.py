"""Table 3 — understanding tough casts (§6.3).

For each tough cast: inspected statements for thin vs traditional
slicing until the cast's safety argument is discovered (the tag-writing
constructors / single store sites), plus the NoObjSens ablation, whose
degradation concentrates on the container-mediated parsegen (jack-
style) casts.
"""

from __future__ import annotations

import pytest

from _util import emit, format_table
from repro.suite.casts import all_casts
from repro.suite.harness import measure_cast


def _build_rows():
    measurements = [measure_cast(cast) for cast in all_casts()]
    rows = []
    for m in measurements:
        rows.append(
            [
                m.cast_id,
                m.thin.inspected,
                m.traditional.inspected,
                f"{m.ratio:.2f}",
                m.n_control,
                m.thin_noobj.inspected if m.thin_noobj.found_all else "n/f",
                m.trad_noobj.inspected if m.trad_noobj.found_all else "n/f",
                "no" if m.verified_by_pointer_analysis else "yes",
            ]
        )
    return measurements, rows


@pytest.mark.parametrize("cast", all_casts(), ids=lambda c: c.cast_id)
def test_cast_measurement(benchmark, cast):
    m = benchmark.pedantic(measure_cast, args=(cast,), rounds=1, iterations=1)
    assert m.thin.found_all
    assert m.thin.inspected <= m.traditional.inspected


def test_table3(benchmark, results_dir):
    measurements, rows = benchmark.pedantic(_build_rows, rounds=1, iterations=1)

    total_thin = sum(m.thin.inspected for m in measurements)
    total_trad = sum(m.traditional.inspected for m in measurements)
    aggregate = total_trad / total_thin
    avg_thin = total_thin / len(measurements)
    avg_trad = total_trad / len(measurements)

    text = format_table(
        ["cast", "#Thin", "#Trad", "Ratio", "#Control", "#ThinNoObjSens",
         "#TradNoObjSens", "tough?"],
        rows,
    )
    summary = (
        f"\naggregate inspected: thin {total_thin}, traditional {total_trad} "
        f"(ratio {aggregate:.2f}; paper reports 9.4x on SPECjvm98)"
        f"\naverage per cast: thin {avg_thin:.1f}, traditional {avg_trad:.1f} "
        "(paper: 29.3 vs 280)"
    )
    emit(
        results_dir,
        "table3.txt",
        "Table 3: understanding tough casts (inspected statements)\n"
        + text
        + summary,
    )

    assert aggregate > 1.5
    for m in measurements:
        assert m.thin.found_all and m.traditional.found_all, m.cast_id
