"""Incremental-analysis trajectory: cold vs warm-hit vs warm-edit.

For each mid-size suite program, three latencies:

* **cold** — full pipeline on an edited source (what every edit cost
  before the incremental engine);
* **warm hit** — unchanged source served from the daemon's memory tier
  (the floor: no analysis at all);
* **warm edit** — the same edit served by a live
  :class:`repro.incremental.IncrementalSession`, split by tier:
  ``relocate`` (comment shift, zero dirty functions) and ``delta``
  (one-function statement insert, warm-started solver).

Every warm-edit payload is asserted byte-identical to the cold
artifact before its timing counts — a fast wrong answer is no answer.

Emits a human table (``results/incremental.txt``) and a trajectory
point (``results/BENCH_incremental.json``).  The relative thresholds
(relocate ≥2x under cold, delta not past cold) are asserted only on
multi-core machines — a loaded 1-core CI box cannot hold a latency
envelope honestly; ``thresholds_enforced`` records the decision.
"""

from __future__ import annotations

import json
import os
import time

from _util import emit, format_table
from repro import AnalyzeOptions, analyze
from repro.artifact.encode import content_key, encode_artifact
from repro.incremental import IncrementalSession, split_units

PROGRAMS = ["jtopas", "minixml", "minijavac", "parsegen"]
REPEATS = 3


def _cold(source: str, options: AnalyzeOptions):
    analyzed = analyze(source, "<input>", options=options)
    payload = encode_artifact(
        analyzed, key=content_key(source, options), include_rich=False
    )
    return analyzed, payload


def _edit_stmt(source: str) -> str:
    spans = [
        u
        for u in split_units(source).units
        if u.kind == "method" and u.end_line > u.start_line
    ]
    unit = spans[len(spans) // 2]
    lines = source.split("\n")
    lines.insert(unit.end_line - 1, '        String __bench = "b";')
    return "\n".join(lines)


def _best(thunk) -> float:
    return min(_timed(thunk) for _ in range(REPEATS))


def _timed(thunk) -> float:
    start = time.perf_counter()
    thunk()
    return (time.perf_counter() - start) * 1000


def test_incremental_trajectory(results_dir):
    from repro.suite.loader import load_source

    options = AnalyzeOptions()
    rows = []
    points = {}
    for program in PROGRAMS:
        source = load_source(program)
        analyzed, payload = _cold(source, options)

        # Cold: what a one-statement edit costs without the engine.
        edited = _edit_stmt(source)
        cold_ms = _best(lambda: analyze(edited, "<input>", options=options))
        edited_cold, edited_payload = _cold(edited, options)

        # Warm hit: artifact bytes already in memory, the serving tier
        # just opens a view (the daemon-level number, with dispatch on
        # top, lives in BENCH_server.json).
        from repro.artifact import ArtifactView

        warm_hit_ms = _best(
            lambda: ArtifactView.from_buffer(payload).close()
        )

        # Warm edit, relocate tier: pure line shift.
        shifted = "// bench shift\n" + source
        _, shifted_payload = _cold(shifted, options)
        relocate_samples = []
        for i in range(REPEATS):
            session = IncrementalSession.from_analyzed(
                analyzed, source, payload=payload
            )
            start = time.perf_counter()
            outcome = session.apply_edit(shifted)
            relocate_samples.append((time.perf_counter() - start) * 1000)
            assert outcome.tier == "relocate"
            assert outcome.payload == shifted_payload
        relocate_ms = min(relocate_samples)

        # Warm edit, delta tier: one dirty function, solver warm-start.
        delta_samples = []
        tier = None
        reused = reanalyzed = 0
        for i in range(REPEATS):
            session = IncrementalSession.from_analyzed(
                analyzed, source, payload=payload
            )
            start = time.perf_counter()
            outcome = session.apply_edit(edited)
            delta_samples.append((time.perf_counter() - start) * 1000)
            assert outcome.payload == edited_payload
            tier = outcome.tier
            reused = outcome.functions_reused
            reanalyzed = outcome.functions_reanalyzed
        delta_ms = min(delta_samples)

        rows.append(
            [
                program,
                f"{cold_ms:.1f}",
                f"{warm_hit_ms:.3f}",
                f"{relocate_ms:.2f}",
                f"{delta_ms:.1f}",
                tier,
                f"{reused}/{reused + reanalyzed}",
            ]
        )
        points[program] = {
            "cold_ms": round(cold_ms, 2),
            "warm_hit_ms": round(warm_hit_ms, 4),
            "warm_edit_relocate_ms": round(relocate_ms, 3),
            "warm_edit_delta_ms": round(delta_ms, 2),
            "delta_tier": tier,
            "functions_reused": reused,
            "functions_reanalyzed": reanalyzed,
        }

    cpu_count = os.cpu_count() or 1
    thresholds_enforced = cpu_count >= 2
    payload_json = {
        "benchmark": "incremental",
        "programs": points,
        "cpu_count": cpu_count,
        "thresholds_enforced": thresholds_enforced,
        "byte_identity_checked": True,
    }
    table = format_table(
        [
            "program",
            "cold_ms",
            "warm_hit_ms",
            "relocate_ms",
            "edit_ms",
            "edit_tier",
            "fns reused",
        ],
        rows,
    )
    table += (
        f"\n\ncpu_count={cpu_count} "
        f"thresholds_enforced={thresholds_enforced}\n"
        "every warm-edit payload asserted byte-identical to cold\n"
    )
    emit(results_dir, "incremental.txt", table)
    (results_dir / "BENCH_incremental.json").write_text(
        json.dumps(payload_json, indent=2, sort_keys=True) + "\n"
    )

    if thresholds_enforced:
        # Measured on an unloaded box: relocate ~4-5x under cold, delta
        # ~1.2x under (the solver warm-start saves real work, but SDG
        # rebuild + re-encode still dominate on suite-size programs).
        # Thresholds sit at ~half the measured headroom.
        for program, point in points.items():
            assert point["warm_edit_relocate_ms"] * 2 <= point["cold_ms"], (
                f"{program}: relocate edit {point['warm_edit_relocate_ms']}ms "
                f"not 2x under cold {point['cold_ms']}ms"
            )
            assert point["warm_edit_delta_ms"] <= point["cold_ms"] * 1.1, (
                f"{program}: delta edit {point['warm_edit_delta_ms']}ms "
                f"regressed past cold {point['cold_ms']}ms"
            )
