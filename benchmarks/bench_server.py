"""Slice-server trajectory: cold vs warm query latency per cache tier.

For each mid-size suite program the daemon answers the same ``stats``
query three ways:

* **cold** — empty cache, the request pays the full pipeline;
* **warm (memory)** — repeat against the same daemon, LRU hit;
* **warm (disk)** — a *restarted* daemon over the same artifact store,
  so the request maps the flat artifact instead of re-analyzing.

Emits a human table (``results/server_latency.txt``) and a
machine-readable trajectory point (``results/BENCH_server.json``).
"""

from __future__ import annotations

import json
import statistics
import tempfile
import time
from pathlib import Path

from _util import emit, format_table
from repro.server.cache import AnalysisCache
from repro.server.daemon import SliceServer
from repro.server.store import DiskStore

PROGRAMS = ["jtopas", "minixml", "minijavac", "parsegen"]


def _request_line(program: str) -> str:
    return json.dumps(
        {"id": 1, "method": "stats", "params": {"program": program}}
    )


def _timed_request(server: SliceServer, line: str) -> tuple[float, str]:
    start = time.perf_counter()
    response = json.loads(server.handle_line(line))
    elapsed_ms = (time.perf_counter() - start) * 1000
    assert response["ok"], response
    return elapsed_ms, response["result"]["origin"]


def test_server_latency_trajectory(results_dir):
    rows = []
    points = {}
    with tempfile.TemporaryDirectory() as tmp:
        store_root = Path(tmp)
        for program in PROGRAMS:
            line = _request_line(program)

            cold_server = SliceServer(
                AnalysisCache(store=DiskStore(store_root / program))
            )
            cold_ms, origin = _timed_request(cold_server, line)
            assert origin == "analyzed"
            memory_ms = min(
                _timed_request(cold_server, line)[0] for _ in range(3)
            )
            cold_server.close()

            disk_server = SliceServer(
                AnalysisCache(store=DiskStore(store_root / program))
            )
            disk_ms, origin = _timed_request(disk_server, line)
            assert origin == "disk", f"expected disk hit, got {origin}"
            disk_server.close()

            points[program] = {
                "cold_ms": round(cold_ms, 3),
                "warm_memory_ms": round(memory_ms, 3),
                "warm_disk_ms": round(disk_ms, 3),
                "memory_speedup": round(cold_ms / memory_ms, 1),
                "disk_speedup": round(cold_ms / disk_ms, 1),
            }
            rows.append(
                [
                    program,
                    f"{cold_ms:.1f}",
                    f"{memory_ms:.2f}",
                    f"{disk_ms:.1f}",
                    f"{cold_ms / memory_ms:.0f}x",
                    f"{cold_ms / disk_ms:.1f}x",
                ]
            )

    memory_speedups = [p["memory_speedup"] for p in points.values()]
    aggregate = {
        "programs": len(points),
        "median_memory_speedup": round(statistics.median(memory_speedups), 1),
        "min_memory_speedup": min(memory_speedups),
        "median_disk_speedup": round(
            statistics.median(p["disk_speedup"] for p in points.values()), 1
        ),
    }
    # The perf-guard contract: a cached query beats first analysis 10x.
    assert aggregate["min_memory_speedup"] >= 10

    table = format_table(
        ["program", "cold ms", "mem ms", "disk ms", "mem speedup", "disk speedup"],
        rows,
    )
    emit(results_dir, "server_latency.txt", table)
    (results_dir / "BENCH_server.json").write_text(
        json.dumps(
            {"benchmark": "server", "programs": points, "aggregate": aggregate},
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
