"""Sharded tier warm-hit throughput: N shards behind a router vs one daemon.

The workload is the tier's design target: a stream of *warm* slice
requests over a set of distinct programs, issued by several concurrent
client connections.  Each mode serves the identical request mix:

* **single** — clients connect straight to one spawned daemon;
* **routed** — clients connect to the router in front of N spawned
  shard daemons; consistent hashing sends each program to the shard
  whose LRU owns it.

All daemons are real spawned ``repro serve --tcp`` processes, so the
comparison includes every process boundary a deployment pays.  On a
single-core machine the shards and the router share one CPU and routing
adds a hop, so routed throughput lands *below* the single daemon there
— the thresholds only bite when the machine can actually put shards on
separate cores (``thresholds_enforced`` records the decision, mirroring
``bench_parallel``).

Emits ``results/router.txt`` and ``results/BENCH_router.json``.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from concurrent.futures import ThreadPoolExecutor

from _util import emit, format_table
from repro.lang.source import marker_line
from repro.server.client import SliceClient
from repro.server.router import Router
from repro.server.shardpool import ShardPool
from repro.suite.loader import load_source

PROGRAM = "minixml"
SHARD_COUNTS = [2]
CLIENTS = 4
REQUESTS_PER_CLIENT = 50
DISTINCT_SOURCES = 8

SERVE_ARGS = ["--no-disk-cache", "--memory-capacity", "16", "--workers", "2"]


def _sources() -> list[tuple[str, int]]:
    base = load_source(PROGRAM)
    seed = marker_line(base, "tag", "printrender")
    return [
        (f"{base}\n// router-bench salt {index}\n", seed)
        for index in range(DISTINCT_SOURCES)
    ]


def _drive(host: str, port: int, sources: list[tuple[str, int]]) -> dict:
    """Warm every source once, then hammer warm hits concurrently."""
    with SliceClient.connect(host, port) as warmer:
        for source, seed in sources:
            result = warmer.slice(source, seed)
            assert result["line_count"] > 0

    latencies_ms: list[float] = []

    def client_loop(worker: int) -> list[float]:
        own: list[float] = []
        with SliceClient.connect(host, port) as client:
            for index in range(REQUESTS_PER_CLIENT):
                source, seed = sources[(worker + index) % len(sources)]
                start = time.perf_counter()
                result = client.slice(source, seed)
                own.append((time.perf_counter() - start) * 1000)
                assert result["origin"] == "memory", result["origin"]
        return own

    with ThreadPoolExecutor(max_workers=CLIENTS) as fan:
        start = time.perf_counter()
        for chunk in fan.map(client_loop, range(CLIENTS)):
            latencies_ms.extend(chunk)
        wall_s = time.perf_counter() - start

    total = CLIENTS * REQUESTS_PER_CLIENT
    return {
        "clients": CLIENTS,
        "requests": total,
        "wall_s": round(wall_s, 3),
        "req_per_s": round(total / wall_s, 1),
        "p50_ms": round(statistics.median(latencies_ms), 3),
        "p95_ms": round(
            sorted(latencies_ms)[int(len(latencies_ms) * 0.95)], 3
        ),
    }


def _measure_single(sources) -> dict:
    pool = ShardPool()
    try:
        (shard,) = pool.spawn_local(1, SERVE_ARGS)
        return _drive(shard.host, shard.port, sources)
    finally:
        pool.stop()


def _measure_routed(shards: int, sources) -> dict:
    pool = ShardPool(probe_interval_s=5.0)
    router = None
    try:
        pool.spawn_local(shards, SERVE_ARGS)
        router = Router(pool, max_inflight=CLIENTS * 2)
        pool.probe_all()
        pool.start_probing()
        host, port = router.start()
        measured = _drive(host, port, sources)
        measured["failovers"] = router.failover_total
        return measured
    finally:
        if router is not None:
            router.stop()
        else:
            pool.stop()


def test_router_throughput(results_dir):
    cpu_count = os.cpu_count() or 1
    sources = _sources()

    single = _measure_single(sources)
    routed = {n: _measure_routed(n, sources) for n in SHARD_COUNTS}

    rows = [
        [
            "single",
            "1",
            str(single["clients"]),
            f"{single['req_per_s']:.0f}/s",
            f"{single['p50_ms']:.1f}ms",
            f"{single['p95_ms']:.1f}ms",
            "1.00x",
        ]
    ]
    for n, measured in routed.items():
        rows.append(
            [
                "routed",
                str(n),
                str(measured["clients"]),
                f"{measured['req_per_s']:.0f}/s",
                f"{measured['p50_ms']:.1f}ms",
                f"{measured['p95_ms']:.1f}ms",
                f"{measured['req_per_s'] / single['req_per_s']:.2f}x",
            ]
        )

    thresholds_enforced = cpu_count >= 4
    payload = {
        "benchmark": "router",
        "program": PROGRAM,
        "cpu_count": cpu_count,
        "thresholds_enforced": thresholds_enforced,
        "distinct_sources": DISTINCT_SOURCES,
        "warm_hit": {"single": single}
        | {f"routed_{n}": m for n, m in routed.items()},
    }
    table = format_table(
        ["mode", "shards", "clients", "warm", "p50", "p95", "vs single"],
        rows,
    )
    table += (
        f"\ncpu_count={cpu_count} thresholds_enforced={thresholds_enforced}\n"
    )
    emit(results_dir, "router.txt", table)
    (results_dir / "BENCH_router.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    for n, measured in routed.items():
        assert measured["failovers"] == 0, measured
    if thresholds_enforced:
        # Acceptance: with real cores under the shards, 2-shard routed
        # warm throughput under concurrent clients at least matches the
        # single daemon (locality keeps every hit a memory hit, and the
        # router hop is amortized by parallel shards).
        assert routed[2]["req_per_s"] >= single["req_per_s"], {
            "single": single,
            "routed": routed[2],
        }
