"""Ablations of thin slicing's design choices (DESIGN.md §5).

The paper makes three deliberate exclusions when defining producers:
base pointers, *array indices* (treated like base pointers, §4.1), and
*control dependences* (§4.2).  Each ablation re-runs the Table 2/3
inspection metric with one choice flipped, quantifying what the paper's
definition buys:

* ``index-as-producer`` — classify array-index uses as producer flow;
* ``thin+control`` — let the thin slicer traverse control dependences;
* ``context depth`` — object-sensitivity context chains of depth 1 vs 2.
"""

from __future__ import annotations

from _util import emit, format_table
from repro.analysis.pointsto import solve_points_to
from repro.frontend import compile_source
from repro.sdg.nodes import EdgeKind, THIN_KINDS
from repro.sdg.sdg import build_sdg
from repro.slicing.engine import Slicer
from repro.slicing.inspection import count_inspected
from repro.slicing.thin import ThinSlicer
from repro.suite.bugs import bugs_for_table2, resolve_task
from repro.suite.casts import all_casts, resolve_cast_lines
from repro.suite.loader import load_source


class _ThinPlusControl(Slicer):
    kinds = THIN_KINDS | {EdgeKind.CONTROL}


def _bug_tasks():
    """(task id, compiled, sdg-kwargs-independent seed/desired) tuples."""
    tasks = []
    for bug in bugs_for_table2():
        if bug.needs_alias_expansion:
            continue  # measured with its own configuration in Table 2
        source = bug.apply()
        compiled = compile_source(source, bug.bug_id, include_stdlib=True)
        task = resolve_task(bug, compiled.source.text)
        tasks.append((bug.bug_id, compiled, task.seed_lines(), set(task.desired),
                      bug.n_control))
    return tasks


def _cast_tasks():
    tasks = []
    cache: dict[str, object] = {}
    for cast in all_casts():
        if cast.program not in cache:
            cache[cast.program] = compile_source(
                load_source(cast.program), cast.program, include_stdlib=True
            )
        compiled = cache[cast.program]
        cast_line, desired, control = resolve_cast_lines(
            cast, compiled.source.text
        )
        tasks.append(
            (cast.cast_id, compiled, [cast_line, *sorted(control)],
             set(desired), cast.n_control)
        )
    return tasks


def _total_inspected(tasks, slicer_factory) -> tuple[int, int]:
    """(total inspected, tasks where the target was found)."""
    total = found = 0
    slicers: dict[int, Slicer] = {}
    for task_id, compiled, seeds, desired, n_control in tasks:
        key = id(compiled)
        if key not in slicers:
            slicers[key] = slicer_factory(compiled)
        result = count_inspected(slicers[key], seeds, desired, n_control)
        total += result.inspected
        found += int(result.found_all)
    return total, found


def test_ablation_array_index_classification(benchmark, results_dir):
    """§4.1's choice: array indices as base pointers vs as producers."""

    def build():
        rows = []
        for label, tasks in (("bugs", _bug_tasks()), ("casts", _cast_tasks())):
            def default_slicer(compiled):
                pts = solve_points_to(compiled.ir)
                return ThinSlicer(compiled, build_sdg(compiled, pts))

            def index_slicer(compiled):
                pts = solve_points_to(compiled.ir)
                return ThinSlicer(
                    compiled,
                    build_sdg(compiled, pts, index_as_producer=True),
                )

            base_total, base_found = _total_inspected(tasks, default_slicer)
            index_total, index_found = _total_inspected(tasks, index_slicer)
            rows.append(
                [label, len(tasks), base_total, index_total,
                 f"{index_total / base_total:.2f}x", base_found, index_found]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    text = format_table(
        ["tasks", "n", "paper (index=base)", "index=producer", "cost",
         "found", "found'"],
        rows,
    )
    emit(
        results_dir,
        "ablation_index.txt",
        "Ablation: array indices as producers (paper excludes them, §4.1)\n"
        + text,
    )
    # The paper's choice must never lose tasks, and treating indices as
    # producers must not be cheaper (it can only widen slices).
    for row in rows:
        assert row[3] >= row[2], row[0]
        assert row[6] >= row[5], row[0]


def test_ablation_thin_plus_control(benchmark, results_dir):
    """§4.2's choice: excluding control dependences from thin slices."""

    def build():
        rows = []
        for label, tasks in (("bugs", _bug_tasks()), ("casts", _cast_tasks())):
            def thin_factory(compiled):
                pts = solve_points_to(compiled.ir)
                return ThinSlicer(compiled, build_sdg(compiled, pts))

            def control_factory(compiled):
                pts = solve_points_to(compiled.ir)
                return _ThinPlusControl(compiled, build_sdg(compiled, pts))

            thin_total, thin_found = _total_inspected(tasks, thin_factory)
            ctl_total, ctl_found = _total_inspected(tasks, control_factory)
            rows.append(
                [label, len(tasks), thin_total, ctl_total,
                 f"{ctl_total / thin_total:.2f}x", thin_found, ctl_found]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    text = format_table(
        ["tasks", "n", "thin", "thin+control", "cost", "found", "found'"],
        rows,
    )
    emit(
        results_dir,
        "ablation_control.txt",
        "Ablation: thin slices traversing control dependences (§4.2 "
        "excludes them)\n" + text,
    )
    for row in rows:
        assert row[3] >= row[2], row[0]  # control deps only add cost here


def test_ablation_context_depth(benchmark, results_dir):
    """Object-sensitivity context depth (default 2, truncation bound)."""

    def build():
        rows = []
        tasks = _cast_tasks()
        for depth in (1, 2, 3):
            def factory(compiled, depth=depth):
                pts = solve_points_to(compiled.ir, max_context_depth=depth)
                return ThinSlicer(compiled, build_sdg(compiled, pts))

            total, found = _total_inspected(tasks, factory)
            rows.append([depth, total, found, len(tasks)])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    text = format_table(["context depth", "total inspected", "found", "n"], rows)
    emit(
        results_dir,
        "ablation_context_depth.txt",
        "Ablation: object-sensitivity context depth (tough casts)\n" + text,
    )
    by_depth = {row[0]: row[1] for row in rows}
    # Deeper contexts never hurt precision.
    assert by_depth[2] <= by_depth[1]
    assert by_depth[3] <= by_depth[2]
