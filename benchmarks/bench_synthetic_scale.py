"""Scaling curves on synthetic programs of growing size.

Regenerates the paper's §6.1 growth story on controlled input: as the
program grows, points-to and SDG construction grow (super-)linearly
while a single CI thin slice stays cheap — the property that makes the
context-insensitive configuration "an attractive option for practical
tools".
"""

from __future__ import annotations

import time

import pytest

from _util import emit, format_table
from repro.analysis.pointsto import solve_points_to
from repro.frontend import compile_source
from repro.lang.source import marker_line
from repro.sdg.sdg import build_sdg
from repro.slicing.thin import ThinSlicer
from repro.slicing.traditional import TraditionalSlicer
from repro.suite.synthetic import generate_layered_program

_SIZES = [(2, 3), (4, 4), (8, 5), (12, 6), (20, 8)]


def _measure(layers: int, width: int):
    source = generate_layered_program(layers, width)
    t0 = time.perf_counter()
    compiled = compile_source(source, f"syn-{layers}x{width}.mj",
                              include_stdlib=True)
    t_compile = time.perf_counter() - t0
    t0 = time.perf_counter()
    pts = solve_points_to(compiled.ir)
    t_pts = time.perf_counter() - t0
    t0 = time.perf_counter()
    sdg = build_sdg(compiled, pts)
    t_sdg = time.perf_counter() - t0
    sink = marker_line(compiled.source.text, "tag", "sink")
    slicer = ThinSlicer(compiled, sdg)
    t0 = time.perf_counter()
    result = slicer.slice_from_line(sink)
    t_slice = time.perf_counter() - t0
    trad = TraditionalSlicer(compiled, sdg).slice_from_line(sink)
    return {
        "label": f"{layers}x{width}",
        "stmts": sdg.statement_count(),
        "compile_ms": t_compile * 1000,
        "pts_ms": t_pts * 1000,
        "sdg_ms": t_sdg * 1000,
        "slice_ms": t_slice * 1000,
        "thin_lines": len(result.lines),
        "trad_lines": len(trad.lines),
    }


@pytest.mark.parametrize("layers,width", _SIZES)
def test_synthetic_pipeline(benchmark, layers, width):
    row = benchmark.pedantic(_measure, args=(layers, width), rounds=1,
                             iterations=1)
    # The deep seed's thin slice spans every layer but stays below the
    # traditional slice.
    assert 0 < row["thin_lines"] <= row["trad_lines"]


def test_synthetic_scaling_table(benchmark, results_dir):
    def build():
        return [_measure(layers, width) for layers, width in _SIZES]

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    text = format_table(
        ["size", "SDG stmts", "compile ms", "points-to ms", "SDG ms",
         "slice ms", "thin lines", "trad lines"],
        [
            [
                r["label"],
                r["stmts"],
                f"{r['compile_ms']:.0f}",
                f"{r['pts_ms']:.0f}",
                f"{r['sdg_ms']:.0f}",
                f"{r['slice_ms']:.2f}",
                r["thin_lines"],
                r["trad_lines"],
            ]
            for r in rows
        ],
    )
    emit(
        results_dir,
        "synthetic_scale.txt",
        "Synthetic scaling: analysis cost vs a single CI thin slice\n"
        + text,
    )
    # Slicing stays cheap relative to the prerequisite analyses even as
    # the program grows ~20x.
    biggest = rows[-1]
    assert biggest["slice_ms"] < biggest["pts_ms"] + biggest["sdg_ms"]
    # Statement counts actually grew.
    assert biggest["stmts"] > rows[0]["stmts"] * 5
