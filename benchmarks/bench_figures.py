"""Figures 1, 2/3, 4, 5 — the paper's worked examples, regenerated.

These are the paper's qualitative "figures": each bench recomputes the
thin slice / expansion the paper walks through and prints the statements
with their roles, asserting the exact sets the text describes.
"""

from __future__ import annotations

from _util import emit, format_table
from repro.analysis.pointsto import solve_points_to
from repro.frontend import compile_source
from repro.ir import instructions as ins
from repro.lang.source import find_markers
from repro.sdg.sdg import build_sdg
from repro.slicing.expansion import explain_aliasing
from repro.slicing.thin import ThinSlicer
from repro.slicing.traditional import TraditionalSlicer
from repro.suite.loader import load_source


def _analyze(name: str, stdlib: bool):
    source = load_source(name)
    compiled = compile_source(source, f"{name}.mj", include_stdlib=stdlib)
    pts = solve_points_to(compiled.ir)
    sdg = build_sdg(compiled, pts)
    return source, compiled, pts, sdg


def _rows_for(source: str, tag_map: dict[str, int], lines: set[int]):
    inverse = {line: tag for tag, line in tag_map.items()}
    rows = []
    for line in sorted(lines):
        text = source.splitlines()[line - 1].split("//@tag:")[0].strip()
        rows.append([line, inverse.get(line, ""), text[:60]])
    return rows


def test_figure1_first_names(benchmark, results_dir):
    """Figure 1: the thin slice traces the erroneous first name through
    the Vector and excludes the SessionState pointer plumbing."""

    def build():
        source, compiled, pts, sdg = _analyze("figure1", stdlib=True)
        tags = find_markers(source)["tag"]
        thin = ThinSlicer(compiled, sdg).slice_from_line(tags["seed"])
        trad = TraditionalSlicer(compiled, sdg).slice_from_line(tags["seed"])
        # Render against the full text (slices reach into the stdlib).
        return compiled.source.text, tags, thin.lines, trad.lines

    source, tags, thin_lines, trad_lines = benchmark.pedantic(
        build, rounds=1, iterations=1
    )
    text = format_table(
        ["line", "tag", "statement"], _rows_for(source, tags, thin_lines)
    )
    emit(
        results_dir,
        "figure1.txt",
        f"Figure 1: thin slice ({len(thin_lines)} lines) vs traditional "
        f"({len(trad_lines)} lines)\n" + text,
    )
    for name in ("read", "indexOf", "buggy", "get", "seed"):
        assert tags[name] in thin_lines
    for name in ("setNames", "getNames"):
        assert tags[name] not in thin_lines
        assert tags[name] in trad_lines


def test_figure2_producers_vs_explainers(benchmark, results_dir):
    """Figures 2/3: producers {allocB, store, seed}; everything else is
    an explainer reached only by the traditional slicer."""

    def build():
        source, compiled, pts, sdg = _analyze("figure2", stdlib=False)
        tags = find_markers(source)["tag"]
        thin = ThinSlicer(compiled, sdg).slice_from_line(tags["seed"])
        trad = TraditionalSlicer(compiled, sdg).slice_from_line(tags["seed"])
        return source, tags, thin.lines, trad.lines

    source, tags, thin_lines, trad_lines = benchmark.pedantic(
        build, rounds=1, iterations=1
    )
    rows = []
    for tag in ("allocA", "copyz", "allocB", "copyw", "store", "cond", "seed"):
        line = tags[tag]
        role = "producer" if line in thin_lines else (
            "explainer" if line in trad_lines else "-"
        )
        rows.append([tag, line, role])
    emit(
        results_dir,
        "figure2.txt",
        "Figure 2/3: producer vs explainer classification\n"
        + format_table(["tag", "line", "role"], rows),
    )
    assert thin_lines == {tags["allocB"], tags["store"], tags["seed"]}
    assert trad_lines >= thin_lines | {tags["allocA"], tags["copyw"], tags["cond"]}


def test_figure4_aliasing_expansion(benchmark, results_dir):
    """Figure 4: the initial thin slice plus the two-slice aliasing
    explanation that reveals the close() call."""

    def build():
        source, compiled, pts, sdg = _analyze("figure4", stdlib=True)
        tags = find_markers(source)["tag"]
        thin = ThinSlicer(compiled, sdg).slice_from_line(tags["seed"])
        store = next(
            i
            for i in compiled.instructions_at_line(tags["close"])
            if isinstance(i, ins.FieldStore)
        )
        load = next(
            i
            for i in compiled.instructions_at_line(tags["isopen"])
            if isinstance(i, ins.FieldLoad)
        )
        explanation = explain_aliasing(compiled, sdg, pts, load, store)
        return compiled.source.text, tags, thin.lines, explanation

    source, tags, thin_lines, explanation = benchmark.pedantic(
        build, rounds=1, iterations=1
    )
    rows = _rows_for(source, tags, thin_lines)
    rows.extend(
        [line, "(aliasing)", source.splitlines()[line - 1].split("//@tag:")[0].strip()[:60]]
        for line in sorted(explanation.lines() - thin_lines)
    )
    emit(
        results_dir,
        "figure4.txt",
        "Figure 4: thin slice + aliasing expansion\n"
        + format_table(["line", "tag", "statement"], rows),
    )
    assert thin_lines == {
        tags[name] for name in ("setopen", "close", "isopen", "readopen", "seed")
    }
    assert tags["closecall"] in explanation.lines()
    assert tags["allocvec"] not in explanation.lines()


def test_figure5_tough_cast(benchmark, results_dir):
    """Figure 5: thin-slicing the op read reveals the constructor writes
    that make the cast safe."""

    def build():
        source, compiled, pts, sdg = _analyze("figure5", stdlib=False)
        tags = find_markers(source)["tag"]
        thin = ThinSlicer(compiled, sdg).slice_from_line(tags["opread"])
        trad = TraditionalSlicer(compiled, sdg).slice_from_line(tags["opread"])
        return source, tags, thin.lines, trad.lines

    source, tags, thin_lines, trad_lines = benchmark.pedantic(
        build, rounds=1, iterations=1
    )
    emit(
        results_dir,
        "figure5.txt",
        f"Figure 5: thin slice from op read ({len(thin_lines)} lines, "
        f"traditional {len(trad_lines)})\n"
        + format_table(["line", "tag", "statement"],
                       _rows_for(source, tags, thin_lines)),
    )
    for name in ("opwrite", "addctor", "mulctor", "constctor"):
        assert tags[name] in thin_lines
    assert len(thin_lines) <= len(trad_lines)
