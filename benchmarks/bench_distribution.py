"""Slice-size distributions across whole programs.

The paper's motivation — "slices of modern programs often grow too
large for human consumption" — is a claim about slices *in general*,
not only at hand-picked seeds.  This bench slices every source line of
every suite program with both techniques and reports the size
distributions, quantifying how much smaller thin slices are across the
board (a supplementary experiment in the spirit of classic slice-size
studies).
"""

from __future__ import annotations

import statistics

import pytest

from _util import emit, format_table
from repro.slicing.thin import ThinSlicer
from repro.slicing.traditional import TraditionalSlicer
from repro.suite.harness import SUITE_PROGRAMS, analyze_program


def _seed_lines(bundle) -> list[int]:
    """Every user-program line holding at least one statement (the
    stdlib starts after the user program in the combined text)."""
    user_end = len(
        bundle.compiled.source.text.split("\nclass Exception")[0].splitlines()
    )
    lines = {
        i.position.line
        for i in bundle.compiled.ir.all_instructions()
        if 0 < i.position.line <= user_end
    }
    return sorted(lines)


def _distribution(program: str):
    bundle = analyze_program(program)
    thin = ThinSlicer(bundle.compiled, bundle.sdg)
    trad = TraditionalSlicer(bundle.compiled, bundle.sdg)
    thin_sizes: list[int] = []
    trad_sizes: list[int] = []
    for line in _seed_lines(bundle):
        t = thin.slice_from_line(line)
        if not t.seeds:
            continue
        thin_sizes.append(len(t.lines))
        trad_sizes.append(len(trad.slice_from_line(line).lines))
    return thin_sizes, trad_sizes


@pytest.mark.parametrize("program", SUITE_PROGRAMS)
def test_distribution_per_program(benchmark, program):
    thin_sizes, trad_sizes = benchmark.pedantic(
        _distribution, args=(program,), rounds=1, iterations=1
    )
    assert thin_sizes and len(thin_sizes) == len(trad_sizes)
    assert all(t <= f for t, f in zip(thin_sizes, trad_sizes))


def test_distribution_table(benchmark, results_dir):
    def build():
        rows = []
        for program in SUITE_PROGRAMS:
            thin_sizes, trad_sizes = _distribution(program)
            ratios = [
                f / t for t, f in zip(thin_sizes, trad_sizes) if t > 0
            ]
            rows.append(
                [
                    program,
                    len(thin_sizes),
                    f"{statistics.mean(thin_sizes):.1f}",
                    f"{statistics.mean(trad_sizes):.1f}",
                    f"{statistics.median(thin_sizes):.0f}",
                    f"{statistics.median(trad_sizes):.0f}",
                    f"{statistics.mean(ratios):.2f}",
                    f"{max(ratios):.1f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    text = format_table(
        ["program", "seeds", "thin mean", "trad mean", "thin med",
         "trad med", "mean ratio", "max ratio"],
        rows,
    )
    emit(
        results_dir,
        "distribution.txt",
        "Slice sizes over every source line (lines in slice)\n" + text,
    )
    # Thin slices are smaller on average for every program.
    for row in rows:
        assert float(row[3]) >= float(row[2]), row[0]
