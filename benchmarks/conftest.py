"""Benchmark fixtures: the results/ output directory."""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
