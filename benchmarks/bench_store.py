"""Warm-disk artifact cost: flat mmap view vs legacy pickle envelope.

The serving-tier question this answers: a daemon restarts (or a new
shard spins up) over a populated store — how fast is the first slice
for each stored program?  Two warm paths are measured end-to-end
(load + one thin slice from a mid-program seed):

* **flat** — map the ``.art`` file read-only, slice straight off the
  :class:`~repro.artifact.ArtifactView` arrays (format 3, the
  production path: nothing is unpickled, nothing is reconstructed);
* **pickle** — read the format-2 envelope and unpickle the whole
  :class:`~repro.AnalyzedProgram` object graph, the way the store
  worked before the flat format landed.

Since artifacts carry crc32 digests, the flat load also pays an
integrity check, and the second question measured here is what each
:data:`~repro.artifact.VERIFY_LEVELS` level costs on the same warm
path: ``none`` (structural parse only — the old behavior), ``header``
(one whole-file crc32 pass — the serving default), and ``deep``
(per-section digests plus structural bounds — the scrubber's level).

Corpus: every suite program plus the two mid-size generated programs
from ``tests/scale/``.  Emits ``results/store.txt`` and
``results/BENCH_store.json``; asserts the flat path is ≥3x faster on
the largest suite program (the acceptance threshold the CI perf guard
also enforces — mmap vs unpickle is not core-count dependent, so the
assertion runs everywhere).
"""

from __future__ import annotations

import json
import pickle
import time
from pathlib import Path

from _util import emit, format_table
from repro import AnalyzeOptions, analyze
from repro.artifact import ArtifactView, content_key
from repro.server.store import DiskStore
from repro.slicing.flatslice import flat_slicer
from repro.suite.harness import SUITE_PROGRAMS
from repro.suite.loader import load_source

SCALE_DIR = Path(__file__).resolve().parent.parent / "tests" / "scale"
SCALE_FILES = ["scale_s101_x6.mj", "scale_s202_x6.mj"]
REPEATS = 5
SPEEDUP_FLOOR = 3.0


def _corpus() -> list[tuple[str, str]]:
    entries = [(name, load_source(name)) for name in SUITE_PROGRAMS]
    for filename in SCALE_FILES:
        entries.append((filename.removesuffix(".mj"), (SCALE_DIR / filename).read_text()))
    return entries


def _seed_line(view: ArtifactView) -> int:
    """A mid-program statement line (same seed for both paths)."""
    lines = sorted(
        {
            view.node_line(node)
            for node in view.graph_nodes()
            if view.is_statement(node) and view.node_line(node) > 0
        }
    )
    return lines[len(lines) // 2]


def _flat_warm_ms(
    store: DiskStore, key: str, seed: int, verify: str = "none"
) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        view = store.load_view(key, verify=verify)
        result = flat_slicer(view, "thin").slice_from_line(seed)
        assert result.lines
        best = min(best, (time.perf_counter() - start) * 1000)
        view.close()
    return best


def _pickle_warm_ms(store: DiskStore, key: str, seed: int) -> float:
    """The retired format-2 warm path, reproduced without migration."""
    path = store.legacy_path_for(key)
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        envelope = pickle.loads(path.read_bytes())
        analyzed = pickle.loads(envelope["payload"])
        result = analyzed.thin_slicer.slice_from_line(seed)
        assert result.lines
        best = min(best, (time.perf_counter() - start) * 1000)
    return best


def test_store_warm_path(results_dir, tmp_path):
    flat_store = DiskStore(tmp_path / "flat")
    legacy_store = DiskStore(tmp_path / "legacy")

    rows = []
    programs = {}
    for name, source in _corpus():
        options = AnalyzeOptions()
        key = content_key(source, options)
        start = time.perf_counter()
        analyzed = analyze(source, f"{name}.mj", options=options)
        analyze_ms = (time.perf_counter() - start) * 1000

        flat_store.save(key, analyzed)
        legacy_store.write_legacy_pickle(key, analyzed)
        art_bytes = flat_store.path_for(key).stat().st_size
        pkl_bytes = legacy_store.legacy_path_for(key).stat().st_size

        probe = flat_store.load_view(key)
        seed = _seed_line(probe)
        probe.close()

        flat_ms = _flat_warm_ms(flat_store, key, seed)
        header_ms = _flat_warm_ms(flat_store, key, seed, verify="header")
        deep_ms = _flat_warm_ms(flat_store, key, seed, verify="deep")
        pickle_ms = _pickle_warm_ms(legacy_store, key, seed)
        speedup = pickle_ms / flat_ms
        programs[name] = {
            "seed_line": seed,
            "analyze_ms": round(analyze_ms, 1),
            "art_kb": round(art_bytes / 1024, 1),
            "pkl_kb": round(pkl_bytes / 1024, 1),
            "flat_warm_ms": round(flat_ms, 3),
            "verify_header_ms": round(header_ms, 3),
            "verify_deep_ms": round(deep_ms, 3),
            "verify_header_overhead_pct": round(
                (header_ms / flat_ms - 1) * 100, 1
            ),
            "verify_deep_overhead_pct": round(
                (deep_ms / flat_ms - 1) * 100, 1
            ),
            "pickle_warm_ms": round(pickle_ms, 3),
            "speedup": round(speedup, 2),
        }
        rows.append(
            [
                name,
                f"{art_bytes / 1024:.0f}KB",
                f"{pkl_bytes / 1024:.0f}KB",
                f"{flat_ms:.2f}ms",
                f"{header_ms:.2f}ms",
                f"{deep_ms:.2f}ms",
                f"{pickle_ms:.2f}ms",
                f"{speedup:.1f}x",
            ]
        )

    largest = max(
        SUITE_PROGRAMS, key=lambda name: programs[name]["pkl_kb"]
    )
    payload = {
        "benchmark": "store",
        "repeats": REPEATS,
        "speedup_floor": SPEEDUP_FLOOR,
        "largest_suite_program": largest,
        "programs": programs,
    }
    table = format_table(
        [
            "program",
            "art",
            "pkl",
            "flat warm",
            "+header",
            "+deep",
            "pickle warm",
            "speedup",
        ],
        rows,
    )
    table += (
        f"\nwarm path = load + one thin slice, best of {REPEATS}; "
        f"floor: flat >= {SPEEDUP_FLOOR:.0f}x on {largest}\n"
        "+header/+deep = the same warm path at each verify level "
        "(header = whole-file crc32, the serving default; deep = "
        "per-section digests + structural bounds, the scrubber level)\n"
    )
    emit(results_dir, "store.txt", table)
    (results_dir / "BENCH_store.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    assert programs[largest]["speedup"] >= SPEEDUP_FLOOR, programs[largest]
