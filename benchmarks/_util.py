"""Result formatting shared by the benchmark modules."""

from __future__ import annotations

from pathlib import Path


def emit(results_dir: Path, name: str, text: str) -> None:
    """Print a table and persist it under results/."""
    print()
    print(text)
    (results_dir / name).write_text(text + "\n")


def format_table(headers: list[str], rows: list[list[object]]) -> str:
    """Minimal fixed-width table renderer."""
    table = [headers] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(table):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
