"""Table 2 — locating bugs (§6.2).

For each injected bug: inspected statements for the thin and the
traditional slicer (BFS metric), their ratio, the pre-determined control
dependences, and both counts again under the non-object-sensitive
points-to analysis.  Also prints the excluded rows (the xml-security
pattern where slicing does not help) and the aggregate ratio the paper
headlines (theirs: 3.3x on real SIR programs).
"""

from __future__ import annotations

import pytest

from _util import emit, format_table
from repro.suite.bugs import bugs_for_table2, excluded_bugs
from repro.suite.harness import measure_bug


def _build_rows():
    measurements = [measure_bug(bug) for bug in bugs_for_table2()]
    rows = []
    for m in measurements:
        rows.append(
            [
                m.bug_id,
                m.thin.inspected,
                m.traditional.inspected,
                f"{m.ratio:.2f}",
                m.n_control,
                m.thin_noobj.inspected if m.thin_noobj.found_all else "n/f",
                m.trad_noobj.inspected if m.trad_noobj.found_all else "n/f",
            ]
        )
    return measurements, rows


@pytest.mark.parametrize("bug", bugs_for_table2(), ids=lambda b: b.bug_id)
def test_bug_measurement(benchmark, bug):
    """Time the full per-bug measurement (compile + analyses + BFS)."""
    m = benchmark.pedantic(measure_bug, args=(bug,), rounds=1, iterations=1)
    assert m.thin.found_all
    if bug.needs_alias_expansion:
        # Expansion rows land near break-even (see tests/test_harness.py).
        assert m.thin.inspected <= m.traditional.inspected * 1.25
    else:
        assert m.thin.inspected <= m.traditional.inspected


def test_table2(benchmark, results_dir):
    measurements, rows = benchmark.pedantic(_build_rows, rounds=1, iterations=1)

    total_thin = sum(m.thin.inspected for m in measurements)
    total_trad = sum(m.traditional.inspected for m in measurements)
    aggregate = total_trad / total_thin
    avg_thin = total_thin / len(measurements)
    avg_trad = total_trad / len(measurements)

    text = format_table(
        ["bug", "#Thin", "#Trad", "Ratio", "#Control", "#ThinNoObjSens",
         "#TradNoObjSens"],
        rows,
    )
    excluded = ", ".join(b.bug_id for b in excluded_bugs())
    summary = (
        f"\naggregate inspected: thin {total_thin}, traditional {total_trad} "
        f"(ratio {aggregate:.2f}; paper reports 3.3x on SIR programs)"
        f"\naverage per bug: thin {avg_thin:.1f}, traditional {avg_trad:.1f} "
        "(paper: 11.5 vs 54.8)"
        f"\nexcluded (slicing not useful, as in the paper): {excluded}"
    )
    emit(
        results_dir,
        "table2.txt",
        "Table 2: locating bugs (inspected statements, BFS metric)\n"
        + text
        + summary,
    )

    assert aggregate > 1.3
    for m in measurements:
        assert m.thin.found_all and m.traditional.found_all, m.bug_id
