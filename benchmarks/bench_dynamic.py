"""Dynamic thin slicing over the Table 2 bugs (§7 extension).

The paper points at Zhang et al.'s result that *dynamic data
dependences alone* often locate real faults, and conjectures that the
dependences a thin slicer considers would suffice.  This bench runs each
injected bug under the tracing interpreter, seeds a dynamic slice at the
failure (uncaught exception or first wrong output line), and reports
whether the dynamic thin slice contains the injected statement and how
its size compares with the dynamic traditional slice.
"""

from __future__ import annotations

import pytest

from _util import emit, format_table
from repro.dynamic import (
    dynamic_thin_slice,
    dynamic_traditional_slice,
    trace_program,
)
from repro.frontend import compile_source
from repro.interp.interpreter import run_program
from repro.lang.source import marker_line
from repro.suite.bugs import bugs_for_table2
from repro.suite.loader import load_source


def _failure_seeds(trace, fixed_output: list[str]):
    """The error event (plus carried-value events), or the event of the
    first diverging output line."""
    if trace.error_event is not None:
        return [trace.error_event, *trace.error_field_events]
    for index, (got, want) in enumerate(zip(trace.output, fixed_output)):
        if got != want:
            return [trace.output_events[index]]
    if len(trace.output) != len(fixed_output) and trace.output_events:
        return [trace.output_events[-1]]
    return []


def _measure(bug):
    buggy_source = bug.apply()
    fixed_compiled = compile_source(
        load_source(bug.program), bug.program, include_stdlib=True
    )
    fixed = run_program(fixed_compiled.ast, fixed_compiled.table, list(bug.args))
    compiled = compile_source(buggy_source, bug.bug_id, include_stdlib=True)
    trace = trace_program(compiled.ast, compiled.table, list(bug.args))
    seeds = _failure_seeds(trace, fixed.output)
    assert seeds, bug.bug_id
    thin = dynamic_thin_slice(seeds)
    trad = dynamic_traditional_slice(seeds)
    buggy_line = marker_line(compiled.source.text, "tag", bug.marker)
    return {
        "bug": bug.bug_id,
        "thin_lines": len(thin.lines),
        "trad_lines": len(trad.lines),
        "thin_found": buggy_line in thin.lines,
        "trad_found": buggy_line in trad.lines,
        "events": trace.events_created,
        "needs_expansion": bug.needs_alias_expansion,
    }


@pytest.mark.parametrize("bug", bugs_for_table2(), ids=lambda b: b.bug_id)
def test_dynamic_measurement(benchmark, bug):
    row = benchmark.pedantic(_measure, args=(bug,), rounds=1, iterations=1)
    assert row["thin_lines"] <= row["trad_lines"]


def test_dynamic_table(benchmark, results_dir):
    def build():
        return [_measure(bug) for bug in bugs_for_table2()]

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = format_table(
        ["bug", "dyn thin", "dyn trad", "thin finds bug", "trad finds bug",
         "events"],
        [
            [
                r["bug"],
                r["thin_lines"],
                r["trad_lines"],
                "yes" if r["thin_found"] else "no",
                "yes" if r["trad_found"] else "no",
                r["events"],
            ]
            for r in rows
        ],
    )
    found = sum(r["thin_found"] for r in rows)
    summary = (
        f"\ndynamic thin finds the injected statement on {found}/{len(rows)} "
        "bugs (data dependences alone — the Zhang et al. observation);\n"
        "the misses are the aliasing/control cases that need expansion, "
        "exactly as in the static evaluation."
    )
    emit(
        results_dir,
        "dynamic_table.txt",
        "Dynamic thin slicing on the Table 2 bugs\n" + table + summary,
    )
    # Most bugs are data-reachable dynamically.
    assert found >= len(rows) * 0.6
    # Any bug needing aliasing expansion statically also eludes the
    # dynamic thin slice (the dependence taxonomy is the same).
    for r in rows:
        if r["needs_expansion"]:
            assert not r["thin_found"], r["bug"]
